#include "cluster/admission.h"

#include <algorithm>

#include "common/string_util.h"

namespace cascn::cluster {

AdmissionController::AdmissionController(const AdmissionOptions& options)
    : options_(options) {}

Status AdmissionController::AdmitTenant(const std::string& tenant,
                                        TimePoint now) {
  if (tenant.empty()) return Status::OK();
  std::lock_guard<std::mutex> lock(mutex_);
  Bucket& bucket = buckets_[tenant];
  if (options_.tokens_per_second <= 0.0) {
    // Quotas off: no limiting, but named tenants still get per-tenant
    // accounting (the cluster's tenant metrics don't require quotas).
    ++bucket.admitted;
    return Status::OK();
  }
  if (!bucket.initialized) {
    bucket.tokens = options_.burst;
    bucket.last_refill = now;
    bucket.initialized = true;
  }
  const double elapsed_s =
      std::chrono::duration<double>(now - bucket.last_refill).count();
  if (elapsed_s > 0.0) {
    bucket.tokens = std::min(
        options_.burst, bucket.tokens + elapsed_s * options_.tokens_per_second);
    bucket.last_refill = now;
  } else if (elapsed_s < 0.0) {
    // Clock skew: `now` jumped behind the last refill (an injected clock in
    // tests, or a bad steady-clock source). Re-anchor instead of leaving
    // last_refill in the future — otherwise the bucket silently stops
    // refilling until the clock catches back up. No tokens are granted for
    // the backwards jump, so the refill can never exceed the burst cap.
    bucket.last_refill = now;
  }
  if (bucket.tokens < 1.0) {
    ++bucket.rejected;
    shed_.fetch_add(1, std::memory_order_relaxed);
    return Status::ResourceExhausted(
        StrFormat("tenant '%s' over quota (%.1f req/s, burst %.0f)",
                  tenant.c_str(), options_.tokens_per_second, options_.burst));
  }
  bucket.tokens -= 1.0;
  ++bucket.admitted;
  return Status::OK();
}

Status AdmissionController::AdmitLoad(size_t queue_depth,
                                      size_t queue_capacity) const {
  if (options_.shed_queue_fraction >= 1.0 || queue_capacity == 0)
    return Status::OK();
  const double fraction =
      static_cast<double>(queue_depth) / static_cast<double>(queue_capacity);
  if (fraction <= options_.shed_queue_fraction) return Status::OK();
  shed_.fetch_add(1, std::memory_order_relaxed);
  return Status::ResourceExhausted(
      StrFormat("shard overloaded: queue %zu/%zu past shed threshold %.2f",
                queue_depth, queue_capacity, options_.shed_queue_fraction));
}

std::vector<AdmissionController::TenantStats> AdmissionController::Stats()
    const {
  std::vector<TenantStats> stats;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats.reserve(buckets_.size());
    for (const auto& [tenant, bucket] : buckets_)
      stats.push_back(TenantStats{tenant, bucket.admitted, bucket.rejected,
                                  bucket.tokens});
  }
  std::sort(stats.begin(), stats.end(),
            [](const TenantStats& a, const TenantStats& b) {
              return a.tenant < b.tenant;
            });
  return stats;
}

uint64_t AdmissionController::total_shed() const {
  return shed_.load(std::memory_order_relaxed);
}

}  // namespace cascn::cluster
