#include "cluster/handoff.h"

#include <cstring>
#include <fstream>

#include "common/crc32.h"
#include "common/file_util.h"
#include "common/string_util.h"
#include "fault/fault.h"

namespace cascn::cluster {

namespace {

constexpr uint32_t kHandoffMagic = 0x444E4148;  // "HAND"
constexpr uint32_t kHandoffVersion = 1;

void AppendU32(std::string& out, uint32_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void AppendI32(std::string& out, int32_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

/// Bounds-checked sequential reader over the raw image.
class Reader {
 public:
  Reader(const std::string& bytes, const std::string& context)
      : bytes_(bytes), context_(context) {}

  Status ReadU32(uint32_t* out, const char* what) {
    if (bytes_.size() - pos_ < sizeof(uint32_t))
      return Truncated(what);
    std::memcpy(out, bytes_.data() + pos_, sizeof(uint32_t));
    pos_ += sizeof(uint32_t);
    return Status::OK();
  }

  Status ReadI32(int32_t* out, const char* what) {
    uint32_t raw = 0;
    CASCN_RETURN_IF_ERROR(ReadU32(&raw, what));
    std::memcpy(out, &raw, sizeof(raw));
    return Status::OK();
  }

  Status ReadString(std::string* out, uint32_t len, const char* what) {
    if (bytes_.size() - pos_ < len) return Truncated(what);
    out->assign(bytes_.data() + pos_, len);
    pos_ += len;
    return Status::OK();
  }

  size_t pos() const { return pos_; }

 private:
  Status Truncated(const char* what) const {
    return Status::IoError(StrFormat(
        "%s: handoff truncated reading %s at offset %zu (size %zu)",
        context_.c_str(), what, pos_, bytes_.size()));
  }

  const std::string& bytes_;
  const std::string& context_;
  size_t pos_ = 0;
};

}  // namespace

std::string SerializeHandoff(int source_shard,
                             const std::vector<HandoffEntry>& entries) {
  std::string out;
  AppendU32(out, kHandoffMagic);
  AppendU32(out, kHandoffVersion);
  AppendI32(out, static_cast<int32_t>(source_shard));
  AppendU32(out, static_cast<uint32_t>(entries.size()));
  for (const HandoffEntry& entry : entries) {
    AppendU32(out, static_cast<uint32_t>(entry.session_id.size()));
    out.append(entry.session_id);
    AppendU32(out, static_cast<uint32_t>(entry.blob.size()));
    out.append(entry.blob);
  }
  AppendU32(out, Crc32(out.data(), out.size()));
  return out;
}

Result<HandoffImage> ParseHandoff(const std::string& bytes,
                                  const std::string& context) {
  if (bytes.size() < 5 * sizeof(uint32_t))
    return Status::IoError(
        StrFormat("%s: %zu bytes is too short to be a handoff file",
                  context.c_str(), bytes.size()));
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + bytes.size() - sizeof(uint32_t),
              sizeof(uint32_t));
  const uint32_t computed_crc =
      Crc32(bytes.data(), bytes.size() - sizeof(uint32_t));
  if (stored_crc != computed_crc)
    return Status::IoError(StrFormat(
        "%s: checksum mismatch (stored 0x%08x, computed 0x%08x): torn or "
        "corrupt handoff",
        context.c_str(), stored_crc, computed_crc));

  Reader reader(bytes, context);
  uint32_t magic = 0;
  CASCN_RETURN_IF_ERROR(reader.ReadU32(&magic, "magic"));
  if (magic != kHandoffMagic)
    return Status::InvalidArgument(StrFormat(
        "%s: not a handoff file (magic 0x%08x)", context.c_str(), magic));
  uint32_t version = 0;
  CASCN_RETURN_IF_ERROR(reader.ReadU32(&version, "version"));
  if (version != kHandoffVersion)
    return Status::InvalidArgument(
        StrFormat("%s: unsupported handoff version %u", context.c_str(),
                  version));

  HandoffImage image;
  int32_t source_shard = 0;
  CASCN_RETURN_IF_ERROR(reader.ReadI32(&source_shard, "source_shard"));
  image.source_shard = source_shard;
  uint32_t count = 0;
  CASCN_RETURN_IF_ERROR(reader.ReadU32(&count, "entry_count"));
  image.entries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    HandoffEntry entry;
    uint32_t id_len = 0;
    CASCN_RETURN_IF_ERROR(reader.ReadU32(&id_len, "session id length"));
    CASCN_RETURN_IF_ERROR(
        reader.ReadString(&entry.session_id, id_len, "session id"));
    uint32_t blob_len = 0;
    CASCN_RETURN_IF_ERROR(reader.ReadU32(&blob_len, "session blob length"));
    CASCN_RETURN_IF_ERROR(
        reader.ReadString(&entry.blob, blob_len, "session blob"));
    image.entries.push_back(std::move(entry));
  }
  if (reader.pos() != bytes.size() - sizeof(uint32_t))
    return Status::IoError(StrFormat(
        "%s: %zu trailing bytes after last handoff entry", context.c_str(),
        bytes.size() - sizeof(uint32_t) - reader.pos()));
  return image;
}

Status WriteHandoffFile(const std::string& path, int source_shard,
                        const std::vector<HandoffEntry>& entries) {
  const std::string bytes = SerializeHandoff(source_shard, entries);
  if (fault::ShouldFire(kFaultHandoffTornWrite)) {
    // Simulate a crash mid-write, same contract as checkpoint torn writes:
    // a torn image under the temp name, destination untouched. The drained
    // sessions are still in memory, so the caller retries the write.
    std::ofstream torn(path + ".tmp", std::ios::binary | std::ios::trunc);
    torn.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
    return Status::IoError("injected fault: handoff write to " + path +
                           " torn mid-stream (destination untouched)");
  }
  return WriteFileAtomic(path, bytes);
}

Result<HandoffImage> ReadHandoffFile(const std::string& path) {
  CASCN_ASSIGN_OR_RETURN(const std::string bytes, ReadFileToString(path));
  return ParseHandoff(bytes, path);
}

}  // namespace cascn::cluster
