#include "cluster/consistent_hash.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace cascn::cluster {

namespace {

/// splitmix64 finalizer: cheap, well-mixed, and stable across platforms —
/// the same hash the fault registry uses for its firing schedule.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

uint64_t HashRing::HashKey(std::string_view key) {
  // FNV-1a over the bytes, then splitmix64 to spread the low entropy of
  // short keys ("s1", "s2", ...) across all 64 bits.
  uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : key) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return Mix64(h);
}

HashRing::HashRing(const HashRingOptions& options) : options_(options) {
  CASCN_CHECK(options.vnodes_per_shard >= 1);
  CASCN_CHECK(options.load_factor > 1.0);
}

void HashRing::SetShards(const std::vector<int>& shard_ids) {
  shard_ids_ = shard_ids;
  std::sort(shard_ids_.begin(), shard_ids_.end());
  shard_ids_.erase(std::unique(shard_ids_.begin(), shard_ids_.end()),
                   shard_ids_.end());
  points_.clear();
  points_.reserve(shard_ids_.size() *
                  static_cast<size_t>(options_.vnodes_per_shard));
  for (int shard : shard_ids_) {
    for (int v = 0; v < options_.vnodes_per_shard; ++v) {
      // Mixing the pre-mixed shard hash with the vnode index decorrelates
      // the point sets of adjacent shard ids.
      const uint64_t point =
          Mix64(Mix64(static_cast<uint64_t>(shard) + 1) +
                0x51a2b3c4d5e6f708ull * static_cast<uint64_t>(v + 1));
      points_.push_back(Point{point, shard});
    }
  }
  std::sort(points_.begin(), points_.end());
}

size_t HashRing::FirstPointAtOrAfter(uint64_t hash) const {
  const auto it = std::lower_bound(points_.begin(), points_.end(),
                                   Point{hash, /*shard=*/0});
  return it == points_.end() ? 0 : static_cast<size_t>(it - points_.begin());
}

int HashRing::OwnerOf(std::string_view key) const {
  CASCN_CHECK(!points_.empty()) << "ring has no shards";
  return points_[FirstPointAtOrAfter(HashKey(key))].shard;
}

int HashRing::NextDistinctOwner(std::string_view key, int excluded) const {
  CASCN_CHECK(!points_.empty()) << "ring has no shards";
  const size_t start = FirstPointAtOrAfter(HashKey(key));
  for (size_t step = 0; step < points_.size(); ++step) {
    const int shard = points_[(start + step) % points_.size()].shard;
    if (shard != excluded) return shard;
  }
  return -1;
}

int HashRing::PickShard(
    std::string_view key,
    const std::function<uint64_t(int)>& load_of) const {
  CASCN_CHECK(!points_.empty()) << "ring has no shards";
  uint64_t total = 0;
  for (int shard : shard_ids_) total += load_of(shard);
  const uint64_t bound = static_cast<uint64_t>(std::ceil(
      options_.load_factor * static_cast<double>(total + 1) /
      static_cast<double>(shard_ids_.size())));

  // Walk the ring from the owner, considering each distinct shard once.
  const size_t start = FirstPointAtOrAfter(HashKey(key));
  size_t seen = 0;
  std::vector<bool> visited(shard_ids_.size(), false);
  for (size_t step = 0;
       step < points_.size() && seen < shard_ids_.size(); ++step) {
    const int shard = points_[(start + step) % points_.size()].shard;
    const size_t index = static_cast<size_t>(
        std::lower_bound(shard_ids_.begin(), shard_ids_.end(), shard) -
        shard_ids_.begin());
    if (visited[index]) continue;
    visited[index] = true;
    ++seen;
    if (load_of(shard) < bound) return shard;
  }
  // Every shard at the bound (loads raced ahead of the total we computed):
  // fall back to the least loaded, ties to the smallest id.
  int best = shard_ids_.front();
  uint64_t best_load = load_of(best);
  for (int shard : shard_ids_) {
    const uint64_t load = load_of(shard);
    if (load < best_load) {
      best = shard;
      best_load = load;
    }
  }
  return best;
}

}  // namespace cascn::cluster
