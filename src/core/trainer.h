// Shared training and evaluation loop (Algorithm 2). Any CascadeRegressor
// — CasCN, its variants, or the deep baselines — is trained with Adam on
// squared log error, with early stopping on validation MSLE and best-weight
// restoration.

#ifndef CASCN_CORE_TRAINER_H_
#define CASCN_CORE_TRAINER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/regressor.h"
#include "data/dataset.h"
#include "obs/telemetry.h"
#include "obs/watchdog.h"

namespace cascn {

/// Knobs of the training loop.
struct TrainerOptions {
  int max_epochs = 12;
  int batch_size = 16;
  double learning_rate = 5e-3;
  double clip_norm = 5.0;
  /// Early stopping: epochs without validation improvement before halting
  /// (the paper stops after 10 stagnant iterations).
  int patience = 4;
  /// Shuffle training order per epoch.
  bool shuffle = true;
  /// Set the model's output offset to the train-mean label before training
  /// (see CascadeRegressor::set_output_offset).
  bool calibrate_output_offset = true;
  uint64_t seed = 7;
  /// Log per-epoch progress at INFO level.
  bool verbose = false;
  /// Receives one JSON object per epoch (timings, gradient norm, learning
  /// rate — every EpochStats field). Not owned; may be null (no streaming).
  obs::TelemetrySink* telemetry = nullptr;
  /// Liveness stamp for a stall watchdog: bumped once per completed batch,
  /// so a hung forward/backward/optimizer step reads as a stall. Not
  /// owned; may be null (no stamping).
  obs::WorkerHeartbeat* heartbeat = nullptr;
  /// Crash safety: when non-empty, the trainer writes a resumable state
  /// file (core/train_state.h) here every `checkpoint_interval` epochs.
  /// With `resume`, a valid existing file continues the run from its epoch;
  /// the resumed run's weights are bit-identical to an uninterrupted run at
  /// any thread count. A corrupt or mismatched file is logged and ignored
  /// (fresh start); a failed write is logged and counted, never fatal.
  std::string checkpoint_path;
  int checkpoint_interval = 1;
  bool resume = true;
  /// Non-finite guard: when a batch produces a non-finite loss or gradient
  /// norm, the step is skipped, parameters and Adam state are restored from
  /// the last good step, and the learning rate is multiplied by this
  /// backoff factor.
  double nonfinite_lr_backoff = 0.5;
};

/// Fault-injection point (src/fault): poisons a batch loss with NaN, keyed
/// by the global step so interrupted-and-resumed runs see the identical
/// fault schedule.
inline constexpr char kFaultTrainerNanLoss[] = "trainer.nan_loss";

/// Per-epoch record, including wall-clock and optimization telemetry.
struct EpochStats {
  int epoch = 0;
  double train_loss = 0.0;
  double validation_msle = 0.0;
  /// Wall-clock of the whole epoch (training batches + validation pass).
  double epoch_seconds = 0.0;
  /// Per-phase wall-clock, summed over the epoch's batches. When the batch
  /// runs its samples concurrently, the fused forward+backward region's
  /// wall-clock is apportioned to the two phases in proportion to the
  /// per-sample time spent in each, so the phase columns still sum to at
  /// most epoch_seconds rather than to thread-count multiples of it.
  double forward_seconds = 0.0;    // loss-graph construction
  double backward_seconds = 0.0;   // backprop
  double reduce_seconds = 0.0;     // gradient tree reduction + flush
  double optimizer_seconds = 0.0;  // Adam step
  double validation_seconds = 0.0;
  /// Mean pre-clip global gradient L2 norm across the epoch's batches.
  double grad_norm = 0.0;
  double learning_rate = 0.0;
  int num_batches = 0;
  /// Batches whose optimizer step was skipped by the non-finite guard.
  int skipped_steps = 0;
  /// parallel::ConfiguredThreads() during this epoch (1 = serial path).
  int threads = 1;

  /// One flat JSON object with every field plus `"event": "epoch"` and the
  /// model name — the trainer's JSON-lines telemetry record.
  std::string ToTelemetryJson(const std::string& model_name) const;
};

/// Outcome of a training run.
struct TrainResult {
  std::vector<EpochStats> history;
  double best_validation_msle = 0.0;
  int best_epoch = 0;
  /// True when the run continued from TrainerOptions::checkpoint_path; the
  /// history then covers the whole run, with pre-resume epochs carrying
  /// losses only (no timings).
  bool resumed_from_checkpoint = false;
  /// Total batches skipped by the non-finite guard, across resumes.
  int64_t skipped_steps = 0;
};

/// MSLE (Eq. 20) of `model` over `samples`. When the model supports
/// concurrent forward and CASCN_THREADS > 1, per-sample errors are computed
/// on the shared pool; the final sum is always taken in sample order, so the
/// result is identical at any thread count.
double EvaluateMsle(CascadeRegressor& model,
                    const std::vector<CascadeSample>& samples);

/// Trains `model` on `dataset.train`, early-stopping on
/// `dataset.validation`, restoring the best-epoch weights before returning.
///
/// When `model.SupportsConcurrentForward()` and CASCN_THREADS > 1, each
/// batch's per-sample forward+backward passes run concurrently, every
/// worker capturing parameter gradients in its own ag::GradSink; the sinks
/// are then combined with a fixed-order tree reduction over sample indices
/// and flushed before the (single) Adam step. Because the floating-point
/// combination order depends only on sample indices, trained weights and
/// losses are bit-identical run-to-run at any thread count.
TrainResult TrainRegressor(CascadeRegressor& model,
                           const CascadeDataset& dataset,
                           const TrainerOptions& options);

}  // namespace cascn

#endif  // CASCN_CORE_TRAINER_H_
