// Shared training and evaluation loop (Algorithm 2). Any CascadeRegressor
// — CasCN, its variants, or the deep baselines — is trained with Adam on
// squared log error, with early stopping on validation MSLE and best-weight
// restoration.

#ifndef CASCN_CORE_TRAINER_H_
#define CASCN_CORE_TRAINER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/regressor.h"
#include "data/dataset.h"
#include "obs/telemetry.h"

namespace cascn {

/// Knobs of the training loop.
struct TrainerOptions {
  int max_epochs = 12;
  int batch_size = 16;
  double learning_rate = 5e-3;
  double clip_norm = 5.0;
  /// Early stopping: epochs without validation improvement before halting
  /// (the paper stops after 10 stagnant iterations).
  int patience = 4;
  /// Shuffle training order per epoch.
  bool shuffle = true;
  /// Set the model's output offset to the train-mean label before training
  /// (see CascadeRegressor::set_output_offset).
  bool calibrate_output_offset = true;
  uint64_t seed = 7;
  /// Log per-epoch progress at INFO level.
  bool verbose = false;
  /// Receives one JSON object per epoch (timings, gradient norm, learning
  /// rate — every EpochStats field). Not owned; may be null (no streaming).
  obs::TelemetrySink* telemetry = nullptr;
};

/// Per-epoch record, including wall-clock and optimization telemetry.
struct EpochStats {
  int epoch = 0;
  double train_loss = 0.0;
  double validation_msle = 0.0;
  /// Wall-clock of the whole epoch (training batches + validation pass).
  double epoch_seconds = 0.0;
  /// Per-phase wall-clock, summed over the epoch's batches.
  double forward_seconds = 0.0;    // loss-graph construction
  double backward_seconds = 0.0;   // backprop
  double optimizer_seconds = 0.0;  // Adam step
  double validation_seconds = 0.0;
  /// Mean pre-clip global gradient L2 norm across the epoch's batches.
  double grad_norm = 0.0;
  double learning_rate = 0.0;
  int num_batches = 0;

  /// One flat JSON object with every field plus `"event": "epoch"` and the
  /// model name — the trainer's JSON-lines telemetry record.
  std::string ToTelemetryJson(const std::string& model_name) const;
};

/// Outcome of a training run.
struct TrainResult {
  std::vector<EpochStats> history;
  double best_validation_msle = 0.0;
  int best_epoch = 0;
};

/// MSLE (Eq. 20) of `model` over `samples`.
double EvaluateMsle(CascadeRegressor& model,
                    const std::vector<CascadeSample>& samples);

/// Trains `model` on `dataset.train`, early-stopping on
/// `dataset.validation`, restoring the best-epoch weights before returning.
TrainResult TrainRegressor(CascadeRegressor& model,
                           const CascadeDataset& dataset,
                           const TrainerOptions& options);

}  // namespace cascn

#endif  // CASCN_CORE_TRAINER_H_
