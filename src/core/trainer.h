// Shared training and evaluation loop (Algorithm 2). Any CascadeRegressor
// — CasCN, its variants, or the deep baselines — is trained with Adam on
// squared log error, with early stopping on validation MSLE and best-weight
// restoration.

#ifndef CASCN_CORE_TRAINER_H_
#define CASCN_CORE_TRAINER_H_

#include <cstdint>
#include <vector>

#include "core/regressor.h"
#include "data/dataset.h"

namespace cascn {

/// Knobs of the training loop.
struct TrainerOptions {
  int max_epochs = 12;
  int batch_size = 16;
  double learning_rate = 5e-3;
  double clip_norm = 5.0;
  /// Early stopping: epochs without validation improvement before halting
  /// (the paper stops after 10 stagnant iterations).
  int patience = 4;
  /// Shuffle training order per epoch.
  bool shuffle = true;
  /// Set the model's output offset to the train-mean label before training
  /// (see CascadeRegressor::set_output_offset).
  bool calibrate_output_offset = true;
  uint64_t seed = 7;
  /// Log per-epoch progress at INFO level.
  bool verbose = false;
};

/// Per-epoch record.
struct EpochStats {
  int epoch = 0;
  double train_loss = 0.0;
  double validation_msle = 0.0;
};

/// Outcome of a training run.
struct TrainResult {
  std::vector<EpochStats> history;
  double best_validation_msle = 0.0;
  int best_epoch = 0;
};

/// MSLE (Eq. 20) of `model` over `samples`.
double EvaluateMsle(CascadeRegressor& model,
                    const std::vector<CascadeSample>& samples);

/// Trains `model` on `dataset.train`, early-stopping on
/// `dataset.validation`, restoring the best-epoch weights before returning.
TrainResult TrainRegressor(CascadeRegressor& model,
                           const CascadeDataset& dataset,
                           const TrainerOptions& options);

}  // namespace cascn

#endif  // CASCN_CORE_TRAINER_H_
