#include "core/cascn_path_model.h"

#include <functional>

#include "common/logging.h"

namespace cascn {

CascnPathModel::CascnPathModel(const CascnPathConfig& config)
    : config_(config) {
  Rng rng(config.seed);
  user_embedding_ = std::make_unique<nn::Embedding>(config.user_universe,
                                                    config.embedding_dim, rng);
  lstm_ = std::make_unique<nn::LstmCell>(config.embedding_dim,
                                         config.hidden_dim, rng);
  mlp_ = std::make_unique<nn::Mlp>(
      std::vector<int>{config.hidden_dim, config.mlp_hidden1,
                       config.mlp_hidden2, 1},
      nn::Activation::kRelu, rng);
  RegisterSubmodule("user_embedding", user_embedding_.get());
  RegisterSubmodule("lstm", lstm_.get());
  RegisterSubmodule("mlp", mlp_.get());
}

const std::vector<std::vector<int>>& CascnPathModel::WalkUsers(
    const CascadeSample& sample) {
  const uint64_t key = SampleFingerprint(sample);
  auto it = walk_cache_.find(key);
  if (it != walk_cache_.end()) return it->second;
  // Crude bound: the cache is per-training-run; wholesale reset on overflow
  // keeps long streaming workloads from growing it without bound.
  if (walk_cache_.size() >= 8192) walk_cache_.clear();

  // Deterministic walks: seed from the cascade id so repeated epochs see the
  // same sequences (matching precomputed-walk pipelines).
  Rng rng(std::hash<std::string>{}(sample.observed.id()) ^ config_.seed);
  WalkOptions opts;
  opts.num_walks = config_.num_walks;
  opts.walk_length = config_.walk_length;
  const std::vector<std::vector<int>> walks =
      SampleCascadeWalks(sample.observed, opts, rng);

  // Transpose to per-step user-id columns and clamp users to the embedding
  // vocabulary.
  std::vector<std::vector<int>> per_step(
      config_.walk_length, std::vector<int>(walks.size(), 0));
  for (size_t w = 0; w < walks.size(); ++w) {
    for (int t = 0; t < config_.walk_length; ++t) {
      const int node = walks[w][t];
      per_step[t][w] =
          sample.observed.event(node).user % config_.user_universe;
    }
  }
  return walk_cache_.emplace(key, std::move(per_step)).first->second;
}

ag::Variable CascnPathModel::PredictLog(const CascadeSample& sample) {
  const auto& per_step = WalkUsers(sample);
  CASCN_CHECK(!per_step.empty());
  nn::RnnState state =
      lstm_->InitialState(static_cast<int>(per_step[0].size()));
  for (const std::vector<int>& users : per_step) {
    state = lstm_->Step(user_embedding_->Lookup(users), state);
  }
  return mlp_->Forward(ag::MeanRows(state.h));
}

}  // namespace cascn
