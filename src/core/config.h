// Configuration of the CasCN model and its ablation variants.

#ifndef CASCN_CORE_CONFIG_H_
#define CASCN_CORE_CONFIG_H_

#include <cstdint>
#include <string>

#include "graph/laplacian.h"
#include "graph/snapshot.h"

namespace cascn {

/// Which CasCN variant to build (Section V-C / Table IV).
enum class CascnVariant {
  /// Full model: directed CasLaplacian, ChebConv-LSTM, learned time decay.
  kDefault,
  /// LSTM replaced by a graph-convolutional GRU.
  kGru,
  /// Separate GCN-then-LSTM pipeline instead of convolutional gates.
  kGcnLstm,
  /// Undirected normalised Laplacian instead of the CasLaplacian.
  kUndirected,
  /// Time-decay weighting disabled.
  kNoTimeDecay,
};

std::string VariantName(CascnVariant variant);

/// How lambda_max for Chebyshev rescaling is obtained (Table V).
enum class LambdaMaxMode {
  /// Exact largest eigenvalue per cascade via power iteration.
  kExact,
  /// The common approximation lambda_max ~= 2.
  kApproximateTwo,
};

/// Hyper-parameters of CasCN.
struct CascnConfig {
  CascnVariant variant = CascnVariant::kDefault;

  /// Padded cascade size n: filter shapes are tied to it; larger observed
  /// cascades are truncated to their first n nodes.
  int padded_size = 32;
  /// Hidden state width d_h.
  int hidden_dim = 12;
  /// Chebyshev order K (paper: K = 2 is best, Table V).
  int cheb_order = 2;
  /// Snapshot sequence cap (recurrence depth bound).
  int max_sequence_length = 10;
  /// Number of time-decay intervals l (Eq. 15).
  int num_time_intervals = 8;
  /// Hidden widths of the prediction MLP (output width 1 is implicit).
  int mlp_hidden1 = 32;
  int mlp_hidden2 = 16;

  /// Extension (the paper's future-work item 1): replace the Eq. 17 sum
  /// pooling over time with learned attention over the per-snapshot
  /// representations. Off by default to match the published model.
  bool attention_pooling = false;

  LambdaMaxMode lambda_mode = LambdaMaxMode::kExact;
  /// Teleport weight of the CasLaplacian transition matrix (Eq. 7).
  double caslaplacian_alpha = 0.85;

  /// Seed for parameter initialisation.
  uint64_t seed = 42;

  /// Per-model cap on cached per-sample encodings (LRU-evicted beyond this).
  /// Sized to hold a full training split; long-running serving workloads
  /// stay bounded instead of growing one entry per observed update.
  int encoding_cache_capacity = 8192;

  SnapshotOptions MakeSnapshotOptions() const {
    SnapshotOptions opts;
    opts.padded_size = padded_size;
    opts.max_sequence_length = max_sequence_length;
    return opts;
  }

  CasLaplacianOptions MakeLaplacianOptions() const {
    CasLaplacianOptions opts;
    opts.alpha = caslaplacian_alpha;
    return opts;
  }
};

}  // namespace cascn

#endif  // CASCN_CORE_CONFIG_H_
