#include "core/streaming_predictor.h"

#include "common/logging.h"
#include "common/math_util.h"
#include "common/string_util.h"

namespace cascn {

StreamingPredictor::StreamingPredictor(CascnModel* model,
                                       double observation_window)
    : model_(model), observation_window_(observation_window) {
  CASCN_CHECK(model != nullptr);
  CASCN_CHECK(observation_window > 0);
}

void StreamingPredictor::Start(int root_user) {
  CASCN_CHECK(events_.empty()) << "cascade already started";
  AdoptionEvent root;
  root.node = 0;
  root.user = root_user;
  root.time = 0.0;
  events_.push_back(root);
  sample_stale_ = true;
  cached_prediction_.reset();
}

Status StreamingPredictor::AddAdoption(int user, int parent_node,
                                       double time) {
  if (events_.empty())
    return Status::FailedPrecondition("Start() must be called first");
  if (parent_node < 0 || parent_node >= static_cast<int>(events_.size()))
    return Status::InvalidArgument(
        StrFormat("unknown parent node %d", parent_node));
  if (time < events_.back().time)
    return Status::InvalidArgument("adoption times must be non-decreasing");
  if (time > observation_window_)
    return Status::OutOfRange("adoption outside the observation window");
  AdoptionEvent e;
  e.node = static_cast<int>(events_.size());
  e.user = user;
  e.parents.push_back(parent_node);
  e.time = time;
  events_.push_back(std::move(e));
  sample_stale_ = true;
  cached_prediction_.reset();
  return Status::OK();
}

const CascadeSample& StreamingPredictor::CurrentSample() {
  if (sample_stale_) {
    auto cascade = Cascade::Create("streaming", events_);
    CASCN_CHECK(cascade.ok()) << cascade.status();
    sample_ = std::make_unique<CascadeSample>();
    sample_->observed = std::move(cascade).value();
    sample_->observation_window = observation_window_;
    sample_stale_ = false;
  }
  return *sample_;
}

double StreamingPredictor::CurrentPredictionLog() {
  CASCN_CHECK(!events_.empty()) << "Start() must be called first";
  if (!cached_prediction_.has_value()) {
    const CascadeSample& sample = CurrentSample();
    cached_prediction_ =
        model_->PredictLogCalibrated(sample).value().At(0, 0);
  }
  return *cached_prediction_;
}

double StreamingPredictor::CurrentPredictionCount() {
  return Exp2m1(CurrentPredictionLog());
}

}  // namespace cascn
