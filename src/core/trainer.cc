#include "core/trainer.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <numeric>

#include "common/logging.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "parallel/parallel_for.h"

namespace cascn {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

double SecondsBetween(Clock::time_point start, Clock::time_point end) {
  return std::chrono::duration<double>(end - start).count();
}

/// PredictLogCalibrated with the failure surfaced: a model returning a null
/// or non-scalar Variable aborts naming the offending cascade instead of
/// failing later inside an unrelated op with no context.
ag::Variable PredictChecked(CascadeRegressor& model,
                            const CascadeSample& sample) {
  ag::Variable pred = model.PredictLogCalibrated(sample);
  CASCN_CHECK(pred.defined()) << model.name()
                              << " returned a null prediction for cascade "
                              << sample.observed.id();
  CASCN_CHECK(pred.rows() == 1 && pred.cols() == 1)
      << model.name() << " returned a " << pred.rows() << "x" << pred.cols()
      << " prediction (want 1x1) for cascade " << sample.observed.id();
  return pred;
}

/// Whether per-sample work may be fanned out over the shared pool.
bool RunConcurrently(const CascadeRegressor& model) {
  return parallel::ConfiguredThreads() > 1 &&
         model.SupportsConcurrentForward();
}

}  // namespace

double EvaluateMsle(CascadeRegressor& model,
                    const std::vector<CascadeSample>& samples) {
  CASCN_CHECK(!samples.empty());
  std::vector<double> squared_error(samples.size());
  auto eval_one = [&](size_t i) {
    const double pred =
        PredictChecked(model, samples[i]).value().At(0, 0);
    const double err = pred - samples[i].log_label;
    squared_error[i] = err * err;
  };
  if (RunConcurrently(model)) {
    parallel::ParallelFor(samples.size(), eval_one);
  } else {
    for (size_t i = 0; i < samples.size(); ++i) eval_one(i);
  }
  double total = 0;  // summed in sample order: identical at any thread count
  for (const double sq : squared_error) total += sq;
  return total / static_cast<double>(samples.size());
}

std::string EpochStats::ToTelemetryJson(const std::string& model_name) const {
  return obs::JsonObjectBuilder()
      .Add("event", "epoch")
      .Add("model", model_name)
      .Add("epoch", epoch)
      .Add("train_loss", train_loss)
      .Add("validation_msle", validation_msle)
      .Add("epoch_seconds", epoch_seconds)
      .Add("forward_seconds", forward_seconds)
      .Add("backward_seconds", backward_seconds)
      .Add("reduce_seconds", reduce_seconds)
      .Add("optimizer_seconds", optimizer_seconds)
      .Add("validation_seconds", validation_seconds)
      .Add("grad_norm", grad_norm)
      .Add("learning_rate", learning_rate)
      .Add("num_batches", num_batches)
      .Add("threads", threads)
      .Build();
}

TrainResult TrainRegressor(CascadeRegressor& model,
                           const CascadeDataset& dataset,
                           const TrainerOptions& options) {
  CASCN_CHECK(!dataset.train.empty() && !dataset.validation.empty());
  CASCN_CHECK(options.max_epochs >= 1 && options.batch_size >= 1);

  if (options.calibrate_output_offset) {
    double mean_label = 0;
    for (const auto& s : dataset.train) mean_label += s.log_label;
    model.set_output_offset(mean_label /
                            static_cast<double>(dataset.train.size()));
  }

  std::vector<ag::Variable> params = model.TrainableParameters();
  nn::Adam::Options adam_opts;
  adam_opts.learning_rate = options.learning_rate;
  adam_opts.clip_norm = options.clip_norm;
  nn::Adam optimizer(params, adam_opts);

  Rng rng(options.seed);
  std::vector<size_t> order(dataset.train.size());
  std::iota(order.begin(), order.end(), 0);

  // Resolved once: registry lookups take a mutex and must stay off the
  // batch loop.
  obs::Counter& epochs_total =
      obs::MetricsRegistry::Get().GetCounter("train_epochs_total");
  obs::Counter& batches_total =
      obs::MetricsRegistry::Get().GetCounter("train_batches_total");
  obs::Counter& samples_total =
      obs::MetricsRegistry::Get().GetCounter("train_samples_total");
  obs::Gauge& grad_norm_gauge =
      obs::MetricsRegistry::Get().GetGauge("train_grad_norm");

  TrainResult result;
  result.best_validation_msle = std::numeric_limits<double>::infinity();
  std::vector<Tensor> best_weights;
  int stagnant = 0;

  for (int epoch = 1; epoch <= options.max_epochs; ++epoch) {
    CASCN_TRACE_SPAN("train_epoch");
    const auto epoch_start = Clock::now();
    if (options.shuffle) rng.Shuffle(order);
    EpochStats stats;
    double epoch_loss = 0;
    double grad_norm_sum = 0;
    size_t processed = 0;
    const bool concurrent = RunConcurrently(model);
    while (processed < order.size()) {
      CASCN_TRACE_SPAN("train_batch");
      const size_t batch_end =
          std::min(processed + options.batch_size, order.size());
      const size_t bn = batch_end - processed;
      // Mean-loss gradient: every per-sample loss is scaled by 1/bn before
      // its own Backward(), which matches backpropping Mean(losses) once.
      const double inv = 1.0 / static_cast<double>(bn);

      // One gradient sink per sample: each forward+backward captures its
      // parameter gradients privately, so samples can run on any thread.
      std::vector<ag::GradSink> sinks(bn);
      std::vector<double> sample_loss(bn);
      std::vector<double> sample_forward_s(bn);
      std::vector<double> sample_backward_s(bn);
      auto run_sample = [&](size_t s) {
        const CascadeSample& sample = dataset.train[order[processed + s]];
        const auto t0 = Clock::now();
        ag::Variable loss;
        {
          CASCN_TRACE_SPAN("forward");
          loss = nn::SquaredError(PredictChecked(model, sample),
                                  sample.log_label);
        }
        sample_loss[s] = loss.value().At(0, 0);
        const auto t1 = Clock::now();
        {
          CASCN_TRACE_SPAN("backward");
          ag::ScopedGradCapture capture(&sinks[s]);
          ag::ScalarMul(loss, inv).Backward();
        }
        sample_forward_s[s] = SecondsBetween(t0, t1);
        sample_backward_s[s] = SecondsSince(t1);
      };

      const auto region_start = Clock::now();
      if (concurrent) {
        parallel::ParallelFor(bn, run_sample);
      } else {
        for (size_t s = 0; s < bn; ++s) run_sample(s);
      }
      const double region_seconds = SecondsSince(region_start);
      // Apportion the fused region's wall-clock between the two phases by
      // the per-sample time spent in each, keeping phase sums <= epoch
      // wall-clock even when many workers overlapped.
      double forward_total = 0, backward_total = 0;
      for (size_t s = 0; s < bn; ++s) {
        forward_total += sample_forward_s[s];
        backward_total += sample_backward_s[s];
        epoch_loss += sample_loss[s];
      }
      if (forward_total + backward_total > 0) {
        const double scale =
            region_seconds / (forward_total + backward_total);
        stats.forward_seconds += forward_total * scale;
        stats.backward_seconds += backward_total * scale;
      }

      // Fixed-order pairwise tree reduction over sample indices: the
      // floating-point combination order is a function of bn alone, never
      // of which thread produced which sink, so results are bit-identical
      // at any thread count. Pairs within a level are disjoint and may
      // themselves run on the pool.
      const auto reduce_start = Clock::now();
      for (size_t stride = 1; stride < bn; stride *= 2) {
        std::vector<size_t> lefts;
        for (size_t i = 0; i + stride < bn; i += 2 * stride)
          lefts.push_back(i);
        if (concurrent && lefts.size() > 1) {
          parallel::ParallelFor(lefts.size(), [&](size_t p) {
            sinks[lefts[p]].Merge(sinks[lefts[p] + stride]);
          });
        } else {
          for (const size_t i : lefts) sinks[i].Merge(sinks[i + stride]);
        }
      }
      sinks[0].Flush();
      stats.reduce_seconds += SecondsSince(reduce_start);

      const double batch_grad_norm = nn::GlobalGradNorm(params);
      grad_norm_sum += batch_grad_norm;
      grad_norm_gauge.Set(batch_grad_norm);
      const auto step_start = Clock::now();
      {
        CASCN_TRACE_SPAN("optimizer_step");
        optimizer.Step();
      }
      stats.optimizer_seconds += SecondsSince(step_start);
      ++stats.num_batches;
      batches_total.Increment();
      samples_total.Increment(static_cast<uint64_t>(bn));
      processed = batch_end;
    }
    stats.epoch = epoch;
    stats.train_loss = epoch_loss / static_cast<double>(order.size());
    {
      CASCN_TRACE_SPAN("validate");
      const auto validation_start = Clock::now();
      stats.validation_msle = EvaluateMsle(model, dataset.validation);
      stats.validation_seconds = SecondsSince(validation_start);
    }
    stats.epoch_seconds = SecondsSince(epoch_start);
    stats.grad_norm =
        stats.num_batches == 0
            ? 0.0
            : grad_norm_sum / static_cast<double>(stats.num_batches);
    stats.learning_rate = optimizer.learning_rate();
    stats.threads = static_cast<int>(parallel::ConfiguredThreads());
    epochs_total.Increment();
    result.history.push_back(stats);
    if (options.verbose) {
      CASCN_LOG(INFO) << model.name() << " epoch " << epoch
                      << " train_loss=" << stats.train_loss
                      << " val_msle=" << stats.validation_msle
                      << StrFormat(" time=%.2fs grad_norm=%.3g",
                                   stats.epoch_seconds, stats.grad_norm);
    }
    if (options.telemetry != nullptr)
      options.telemetry->Emit(stats.ToTelemetryJson(model.name()));
    if (stats.validation_msle < result.best_validation_msle - 1e-9) {
      result.best_validation_msle = stats.validation_msle;
      result.best_epoch = epoch;
      stagnant = 0;
      best_weights.clear();
      for (const auto& p : params) best_weights.push_back(p.value());
    } else if (++stagnant > options.patience) {
      break;
    }
  }
  // Restore the best-epoch weights.
  if (!best_weights.empty()) {
    for (size_t i = 0; i < params.size(); ++i)
      params[i].mutable_value() = best_weights[i];
  }
  return result;
}

}  // namespace cascn
