#include "core/trainer.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/logging.h"
#include "common/rng.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace cascn {

double EvaluateMsle(CascadeRegressor& model,
                    const std::vector<CascadeSample>& samples) {
  CASCN_CHECK(!samples.empty());
  double total = 0;
  for (const CascadeSample& sample : samples) {
    const double pred = model.PredictLogCalibrated(sample).value().At(0, 0);
    const double err = pred - sample.log_label;
    total += err * err;
  }
  return total / static_cast<double>(samples.size());
}

TrainResult TrainRegressor(CascadeRegressor& model,
                           const CascadeDataset& dataset,
                           const TrainerOptions& options) {
  CASCN_CHECK(!dataset.train.empty() && !dataset.validation.empty());
  CASCN_CHECK(options.max_epochs >= 1 && options.batch_size >= 1);

  if (options.calibrate_output_offset) {
    double mean_label = 0;
    for (const auto& s : dataset.train) mean_label += s.log_label;
    model.set_output_offset(mean_label /
                            static_cast<double>(dataset.train.size()));
  }

  std::vector<ag::Variable> params = model.TrainableParameters();
  nn::Adam::Options adam_opts;
  adam_opts.learning_rate = options.learning_rate;
  adam_opts.clip_norm = options.clip_norm;
  nn::Adam optimizer(params, adam_opts);

  Rng rng(options.seed);
  std::vector<size_t> order(dataset.train.size());
  std::iota(order.begin(), order.end(), 0);

  TrainResult result;
  result.best_validation_msle = std::numeric_limits<double>::infinity();
  std::vector<Tensor> best_weights;
  int stagnant = 0;

  for (int epoch = 1; epoch <= options.max_epochs; ++epoch) {
    if (options.shuffle) rng.Shuffle(order);
    double epoch_loss = 0;
    size_t processed = 0;
    while (processed < order.size()) {
      const size_t batch_end =
          std::min(processed + options.batch_size, order.size());
      std::vector<ag::Variable> losses;
      losses.reserve(batch_end - processed);
      for (size_t i = processed; i < batch_end; ++i) {
        const CascadeSample& sample = dataset.train[order[i]];
        losses.push_back(
            nn::SquaredError(model.PredictLogCalibrated(sample),
                             sample.log_label));
      }
      const ag::Variable batch_loss = nn::MeanLoss(losses);
      epoch_loss += batch_loss.value().At(0, 0) *
                    static_cast<double>(batch_end - processed);
      batch_loss.Backward();
      optimizer.Step();
      processed = batch_end;
    }
    EpochStats stats;
    stats.epoch = epoch;
    stats.train_loss = epoch_loss / static_cast<double>(order.size());
    stats.validation_msle = EvaluateMsle(model, dataset.validation);
    result.history.push_back(stats);
    if (options.verbose) {
      CASCN_LOG(INFO) << model.name() << " epoch " << epoch
                      << " train_loss=" << stats.train_loss
                      << " val_msle=" << stats.validation_msle;
    }
    if (stats.validation_msle < result.best_validation_msle - 1e-9) {
      result.best_validation_msle = stats.validation_msle;
      result.best_epoch = epoch;
      stagnant = 0;
      best_weights.clear();
      for (const auto& p : params) best_weights.push_back(p.value());
    } else if (++stagnant > options.patience) {
      break;
    }
  }
  // Restore the best-epoch weights.
  if (!best_weights.empty()) {
    for (size_t i = 0; i < params.size(); ++i)
      params[i].mutable_value() = best_weights[i];
  }
  return result;
}

}  // namespace cascn
