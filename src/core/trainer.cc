#include "core/trainer.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <numeric>

#include "common/logging.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace cascn {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

double EvaluateMsle(CascadeRegressor& model,
                    const std::vector<CascadeSample>& samples) {
  CASCN_CHECK(!samples.empty());
  double total = 0;
  for (const CascadeSample& sample : samples) {
    const double pred = model.PredictLogCalibrated(sample).value().At(0, 0);
    const double err = pred - sample.log_label;
    total += err * err;
  }
  return total / static_cast<double>(samples.size());
}

std::string EpochStats::ToTelemetryJson(const std::string& model_name) const {
  return obs::JsonObjectBuilder()
      .Add("event", "epoch")
      .Add("model", model_name)
      .Add("epoch", epoch)
      .Add("train_loss", train_loss)
      .Add("validation_msle", validation_msle)
      .Add("epoch_seconds", epoch_seconds)
      .Add("forward_seconds", forward_seconds)
      .Add("backward_seconds", backward_seconds)
      .Add("optimizer_seconds", optimizer_seconds)
      .Add("validation_seconds", validation_seconds)
      .Add("grad_norm", grad_norm)
      .Add("learning_rate", learning_rate)
      .Add("num_batches", num_batches)
      .Build();
}

TrainResult TrainRegressor(CascadeRegressor& model,
                           const CascadeDataset& dataset,
                           const TrainerOptions& options) {
  CASCN_CHECK(!dataset.train.empty() && !dataset.validation.empty());
  CASCN_CHECK(options.max_epochs >= 1 && options.batch_size >= 1);

  if (options.calibrate_output_offset) {
    double mean_label = 0;
    for (const auto& s : dataset.train) mean_label += s.log_label;
    model.set_output_offset(mean_label /
                            static_cast<double>(dataset.train.size()));
  }

  std::vector<ag::Variable> params = model.TrainableParameters();
  nn::Adam::Options adam_opts;
  adam_opts.learning_rate = options.learning_rate;
  adam_opts.clip_norm = options.clip_norm;
  nn::Adam optimizer(params, adam_opts);

  Rng rng(options.seed);
  std::vector<size_t> order(dataset.train.size());
  std::iota(order.begin(), order.end(), 0);

  // Resolved once: registry lookups take a mutex and must stay off the
  // batch loop.
  obs::Counter& epochs_total =
      obs::MetricsRegistry::Get().GetCounter("train_epochs_total");
  obs::Counter& batches_total =
      obs::MetricsRegistry::Get().GetCounter("train_batches_total");
  obs::Counter& samples_total =
      obs::MetricsRegistry::Get().GetCounter("train_samples_total");
  obs::Gauge& grad_norm_gauge =
      obs::MetricsRegistry::Get().GetGauge("train_grad_norm");

  TrainResult result;
  result.best_validation_msle = std::numeric_limits<double>::infinity();
  std::vector<Tensor> best_weights;
  int stagnant = 0;

  for (int epoch = 1; epoch <= options.max_epochs; ++epoch) {
    CASCN_TRACE_SPAN("train_epoch");
    const auto epoch_start = Clock::now();
    if (options.shuffle) rng.Shuffle(order);
    EpochStats stats;
    double epoch_loss = 0;
    double grad_norm_sum = 0;
    size_t processed = 0;
    while (processed < order.size()) {
      CASCN_TRACE_SPAN("train_batch");
      const size_t batch_end =
          std::min(processed + options.batch_size, order.size());
      const auto forward_start = Clock::now();
      std::vector<ag::Variable> losses;
      losses.reserve(batch_end - processed);
      {
        CASCN_TRACE_SPAN("forward");
        for (size_t i = processed; i < batch_end; ++i) {
          const CascadeSample& sample = dataset.train[order[i]];
          losses.push_back(
              nn::SquaredError(model.PredictLogCalibrated(sample),
                               sample.log_label));
        }
      }
      const ag::Variable batch_loss = nn::MeanLoss(losses);
      epoch_loss += batch_loss.value().At(0, 0) *
                    static_cast<double>(batch_end - processed);
      const auto backward_start = Clock::now();
      stats.forward_seconds +=
          std::chrono::duration<double>(backward_start - forward_start)
              .count();
      {
        CASCN_TRACE_SPAN("backward");
        batch_loss.Backward();
      }
      const double batch_grad_norm = nn::GlobalGradNorm(params);
      grad_norm_sum += batch_grad_norm;
      grad_norm_gauge.Set(batch_grad_norm);
      const auto step_start = Clock::now();
      stats.backward_seconds +=
          std::chrono::duration<double>(step_start - backward_start).count();
      {
        CASCN_TRACE_SPAN("optimizer_step");
        optimizer.Step();
      }
      stats.optimizer_seconds += SecondsSince(step_start);
      ++stats.num_batches;
      batches_total.Increment();
      samples_total.Increment(static_cast<uint64_t>(batch_end - processed));
      processed = batch_end;
    }
    stats.epoch = epoch;
    stats.train_loss = epoch_loss / static_cast<double>(order.size());
    {
      CASCN_TRACE_SPAN("validate");
      const auto validation_start = Clock::now();
      stats.validation_msle = EvaluateMsle(model, dataset.validation);
      stats.validation_seconds = SecondsSince(validation_start);
    }
    stats.epoch_seconds = SecondsSince(epoch_start);
    stats.grad_norm =
        stats.num_batches == 0
            ? 0.0
            : grad_norm_sum / static_cast<double>(stats.num_batches);
    stats.learning_rate = optimizer.learning_rate();
    epochs_total.Increment();
    result.history.push_back(stats);
    if (options.verbose) {
      CASCN_LOG(INFO) << model.name() << " epoch " << epoch
                      << " train_loss=" << stats.train_loss
                      << " val_msle=" << stats.validation_msle
                      << StrFormat(" time=%.2fs grad_norm=%.3g",
                                   stats.epoch_seconds, stats.grad_norm);
    }
    if (options.telemetry != nullptr)
      options.telemetry->Emit(stats.ToTelemetryJson(model.name()));
    if (stats.validation_msle < result.best_validation_msle - 1e-9) {
      result.best_validation_msle = stats.validation_msle;
      result.best_epoch = epoch;
      stagnant = 0;
      best_weights.clear();
      for (const auto& p : params) best_weights.push_back(p.value());
    } else if (++stagnant > options.patience) {
      break;
    }
  }
  // Restore the best-epoch weights.
  if (!best_weights.empty()) {
    for (size_t i = 0; i < params.size(); ++i)
      params[i].mutable_value() = best_weights[i];
  }
  return result;
}

}  // namespace cascn
