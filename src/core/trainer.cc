#include "core/trainer.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <limits>
#include <numeric>

#include "common/logging.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "core/train_state.h"
#include "fault/fault.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "parallel/parallel_for.h"

namespace cascn {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

double SecondsBetween(Clock::time_point start, Clock::time_point end) {
  return std::chrono::duration<double>(end - start).count();
}

/// PredictLogCalibrated with the failure surfaced: a model returning a null
/// or non-scalar Variable aborts naming the offending cascade instead of
/// failing later inside an unrelated op with no context.
ag::Variable PredictChecked(CascadeRegressor& model,
                            const CascadeSample& sample) {
  ag::Variable pred = model.PredictLogCalibrated(sample);
  CASCN_CHECK(pred.defined()) << model.name()
                              << " returned a null prediction for cascade "
                              << sample.observed.id();
  CASCN_CHECK(pred.rows() == 1 && pred.cols() == 1)
      << model.name() << " returned a " << pred.rows() << "x" << pred.cols()
      << " prediction (want 1x1) for cascade " << sample.observed.id();
  return pred;
}

/// Whether per-sample work may be fanned out over the shared pool.
bool RunConcurrently(const CascadeRegressor& model) {
  return parallel::ConfiguredThreads() > 1 &&
         model.SupportsConcurrentForward();
}

}  // namespace

double EvaluateMsle(CascadeRegressor& model,
                    const std::vector<CascadeSample>& samples) {
  CASCN_CHECK(!samples.empty());
  std::vector<double> squared_error(samples.size());
  auto eval_one = [&](size_t i) {
    const double pred =
        PredictChecked(model, samples[i]).value().At(0, 0);
    const double err = pred - samples[i].log_label;
    squared_error[i] = err * err;
  };
  if (RunConcurrently(model)) {
    parallel::ParallelFor(samples.size(), eval_one);
  } else {
    for (size_t i = 0; i < samples.size(); ++i) eval_one(i);
  }
  double total = 0;  // summed in sample order: identical at any thread count
  for (const double sq : squared_error) total += sq;
  return total / static_cast<double>(samples.size());
}

std::string EpochStats::ToTelemetryJson(const std::string& model_name) const {
  return obs::JsonObjectBuilder()
      .Add("event", "epoch")
      .Add("model", model_name)
      .Add("epoch", epoch)
      .Add("train_loss", train_loss)
      .Add("validation_msle", validation_msle)
      .Add("epoch_seconds", epoch_seconds)
      .Add("forward_seconds", forward_seconds)
      .Add("backward_seconds", backward_seconds)
      .Add("reduce_seconds", reduce_seconds)
      .Add("optimizer_seconds", optimizer_seconds)
      .Add("validation_seconds", validation_seconds)
      .Add("grad_norm", grad_norm)
      .Add("learning_rate", learning_rate)
      .Add("num_batches", num_batches)
      .Add("skipped_steps", skipped_steps)
      .Add("threads", threads)
      .Build();
}

TrainResult TrainRegressor(CascadeRegressor& model,
                           const CascadeDataset& dataset,
                           const TrainerOptions& options) {
  CASCN_CHECK(!dataset.train.empty() && !dataset.validation.empty());
  CASCN_CHECK(options.max_epochs >= 1 && options.batch_size >= 1);
  CASCN_CHECK(options.checkpoint_interval >= 1);
  CASCN_CHECK(options.nonfinite_lr_backoff > 0 &&
              options.nonfinite_lr_backoff <= 1.0);

  if (options.calibrate_output_offset) {
    double mean_label = 0;
    for (const auto& s : dataset.train) mean_label += s.log_label;
    model.set_output_offset(mean_label /
                            static_cast<double>(dataset.train.size()));
  }

  std::vector<ag::Variable> params = model.TrainableParameters();
  nn::Adam::Options adam_opts;
  adam_opts.learning_rate = options.learning_rate;
  adam_opts.clip_norm = options.clip_norm;
  nn::Adam optimizer(params, adam_opts);

  Rng rng(options.seed);
  std::vector<size_t> order(dataset.train.size());
  std::iota(order.begin(), order.end(), 0);

  // Resolved once: registry lookups take a mutex and must stay off the
  // batch loop.
  obs::Counter& epochs_total =
      obs::MetricsRegistry::Get().GetCounter("train_epochs_total");
  obs::Counter& batches_total =
      obs::MetricsRegistry::Get().GetCounter("train_batches_total");
  obs::Counter& samples_total =
      obs::MetricsRegistry::Get().GetCounter("train_samples_total");
  obs::Counter& nonfinite_total =
      obs::MetricsRegistry::Get().GetCounter("train_nonfinite_steps_total");
  obs::Counter& lr_backoffs_total =
      obs::MetricsRegistry::Get().GetCounter("train_lr_backoffs_total");
  obs::Counter& state_writes_total =
      obs::MetricsRegistry::Get().GetCounter("train_state_writes_total");
  obs::Counter& state_write_failures_total = obs::MetricsRegistry::Get()
      .GetCounter("train_state_write_failures_total");
  obs::Counter& resumes_total =
      obs::MetricsRegistry::Get().GetCounter("train_resumes_total");
  obs::Gauge& grad_norm_gauge =
      obs::MetricsRegistry::Get().GetGauge("train_grad_norm");
  obs::Gauge& epoch_gauge =
      obs::MetricsRegistry::Get().GetGauge("train_epoch");

  TrainResult result;
  result.best_validation_msle = std::numeric_limits<double>::infinity();
  std::vector<Tensor> best_weights;
  int stagnant = 0;
  int start_epoch = 1;
  uint64_t global_step = 0;

  // Resume from a prior run's state, when asked and the file is usable. A
  // missing file is a silent fresh start; a corrupt or mismatched one is
  // logged and ignored, never fatal.
  if (!options.checkpoint_path.empty() && options.resume &&
      std::ifstream(options.checkpoint_path).good()) {
    Result<TrainState> loaded = LoadTrainState(options.checkpoint_path);
    Status restore_status = loaded.status();
    if (loaded.ok()) {
      TrainState& st = loaded.value();
      if (st.params.size() != params.size()) {
        restore_status = Status::InvalidArgument(StrFormat(
            "train state holds %zu parameters, model has %zu",
            st.params.size(), params.size()));
      } else {
        restore_status = optimizer.RestoreState(
            nn::Adam::State{st.adam_t, st.adam_m, st.adam_v});
      }
      if (restore_status.ok()) {
        for (size_t i = 0; i < params.size(); ++i)
          params[i].mutable_value() = st.params[i];
        optimizer.set_learning_rate(st.learning_rate);
        rng.RestoreState(st.rng);
        model.set_output_offset(st.output_offset);
        start_epoch = st.next_epoch;
        stagnant = st.stagnant;
        global_step = st.global_step;
        result.best_epoch = st.best_epoch;
        result.best_validation_msle = st.best_validation_msle;
        result.skipped_steps = st.skipped_steps;
        result.resumed_from_checkpoint = true;
        best_weights = std::move(st.best_weights);
        for (size_t i = 0; i < st.history_train_loss.size(); ++i) {
          EpochStats past;
          past.epoch = static_cast<int>(i) + 1;
          past.train_loss = st.history_train_loss[i];
          past.validation_msle = st.history_validation_msle[i];
          result.history.push_back(past);
        }
        // A state saved by an early-stopped run must not train further.
        if (stagnant > options.patience) start_epoch = options.max_epochs + 1;
        resumes_total.Increment();
        if (options.verbose) {
          CASCN_LOG(INFO) << model.name() << " resuming from "
                          << options.checkpoint_path << " at epoch "
                          << start_epoch;
        }
      }
    }
    if (!restore_status.ok()) {
      CASCN_LOG(WARNING) << model.name() << " ignoring unusable train state "
                         << options.checkpoint_path << ": "
                         << restore_status << "; starting fresh";
    }
  }

  // Last-good snapshot the non-finite guard rolls back to. Updated after
  // every successful optimizer step.
  std::vector<Tensor> good_params;
  good_params.reserve(params.size());
  for (const auto& p : params) good_params.push_back(p.value());
  nn::Adam::State good_adam = optimizer.SaveState();

  // Writes the resumable state for `completed_epoch`; failures are logged
  // and counted (training proceeds, the previous state file survives).
  auto write_state = [&](int completed_epoch) {
    TrainState st;
    st.next_epoch = completed_epoch + 1;
    st.learning_rate = optimizer.learning_rate();
    st.stagnant = stagnant;
    st.best_epoch = result.best_epoch;
    st.best_validation_msle = result.best_validation_msle;
    st.global_step = global_step;
    st.skipped_steps = result.skipped_steps;
    st.rng = rng.SaveState();
    st.output_offset = model.output_offset();
    for (const auto& p : params) st.params.push_back(p.value());
    nn::Adam::State adam = optimizer.SaveState();
    st.adam_t = adam.t;
    st.adam_m = std::move(adam.m);
    st.adam_v = std::move(adam.v);
    st.best_weights = best_weights;
    for (const EpochStats& past : result.history) {
      st.history_train_loss.push_back(past.train_loss);
      st.history_validation_msle.push_back(past.validation_msle);
    }
    const Status status = SaveTrainState(options.checkpoint_path, st);
    if (status.ok()) {
      state_writes_total.Increment();
    } else {
      state_write_failures_total.Increment();
      CASCN_LOG(WARNING) << model.name() << " failed writing train state: "
                         << status;
    }
  };

  for (int epoch = start_epoch; epoch <= options.max_epochs; ++epoch) {
    CASCN_TRACE_SPAN("train_epoch");
    epoch_gauge.Set(static_cast<double>(epoch));
    const auto epoch_start = Clock::now();
    // Re-derive the permutation from the identity so the epoch's order is a
    // pure function of the Rng state — the state file can then resume it.
    if (options.shuffle) {
      std::iota(order.begin(), order.end(), 0);
      rng.Shuffle(order);
    }
    EpochStats stats;
    double epoch_loss = 0;
    double grad_norm_sum = 0;
    size_t processed = 0;
    size_t counted_samples = 0;  // samples in non-skipped batches
    const bool concurrent = RunConcurrently(model);
    while (processed < order.size()) {
      CASCN_TRACE_SPAN("train_batch");
      const size_t batch_end =
          std::min(processed + options.batch_size, order.size());
      const size_t bn = batch_end - processed;
      // Mean-loss gradient: every per-sample loss is scaled by 1/bn before
      // its own Backward(), which matches backpropping Mean(losses) once.
      const double inv = 1.0 / static_cast<double>(bn);

      // One gradient sink per sample: each forward+backward captures its
      // parameter gradients privately, so samples can run on any thread.
      std::vector<ag::GradSink> sinks(bn);
      std::vector<double> sample_loss(bn);
      std::vector<double> sample_forward_s(bn);
      std::vector<double> sample_backward_s(bn);
      auto run_sample = [&](size_t s) {
        const CascadeSample& sample = dataset.train[order[processed + s]];
        const auto t0 = Clock::now();
        ag::Variable loss;
        {
          CASCN_TRACE_SPAN("forward");
          loss = nn::SquaredError(PredictChecked(model, sample),
                                  sample.log_label);
        }
        sample_loss[s] = loss.value().At(0, 0);
        const auto t1 = Clock::now();
        {
          CASCN_TRACE_SPAN("backward");
          ag::ScopedGradCapture capture(&sinks[s]);
          ag::ScalarMul(loss, inv).Backward();
        }
        sample_forward_s[s] = SecondsBetween(t0, t1);
        sample_backward_s[s] = SecondsSince(t1);
      };

      const auto region_start = Clock::now();
      if (concurrent) {
        parallel::ParallelFor(bn, run_sample);
      } else {
        for (size_t s = 0; s < bn; ++s) run_sample(s);
      }
      const double region_seconds = SecondsSince(region_start);
      // Apportion the fused region's wall-clock between the two phases by
      // the per-sample time spent in each, keeping phase sums <= epoch
      // wall-clock even when many workers overlapped.
      double forward_total = 0, backward_total = 0, batch_loss_sum = 0;
      for (size_t s = 0; s < bn; ++s) {
        forward_total += sample_forward_s[s];
        backward_total += sample_backward_s[s];
        batch_loss_sum += sample_loss[s];
      }
      if (forward_total + backward_total > 0) {
        const double scale =
            region_seconds / (forward_total + backward_total);
        stats.forward_seconds += forward_total * scale;
        stats.backward_seconds += backward_total * scale;
      }

      // Fixed-order pairwise tree reduction over sample indices: the
      // floating-point combination order is a function of bn alone, never
      // of which thread produced which sink, so results are bit-identical
      // at any thread count. Pairs within a level are disjoint and may
      // themselves run on the pool.
      const auto reduce_start = Clock::now();
      for (size_t stride = 1; stride < bn; stride *= 2) {
        std::vector<size_t> lefts;
        for (size_t i = 0; i + stride < bn; i += 2 * stride)
          lefts.push_back(i);
        if (concurrent && lefts.size() > 1) {
          parallel::ParallelFor(lefts.size(), [&](size_t p) {
            sinks[lefts[p]].Merge(sinks[lefts[p] + stride]);
          });
        } else {
          for (const size_t i : lefts) sinks[i].Merge(sinks[i + stride]);
        }
      }
      sinks[0].Flush();
      stats.reduce_seconds += SecondsSince(reduce_start);

      const double batch_grad_norm = nn::GlobalGradNorm(params);
      // Non-finite guard. The injected poison (keyed by the global step so
      // a resumed run sees the identical fault schedule) and a genuinely
      // diverged batch take the same path: skip the optimizer step, roll
      // parameters and Adam state back to the last good step, and back the
      // learning rate off.
      const double batch_loss = fault::PoisonNaN(
          kFaultTrainerNanLoss, batch_loss_sum / static_cast<double>(bn),
          global_step);
      if (!std::isfinite(batch_loss) || !std::isfinite(batch_grad_norm)) {
        optimizer.ZeroGrad();
        for (size_t i = 0; i < params.size(); ++i)
          params[i].mutable_value() = good_params[i];
        CASCN_CHECK(optimizer.RestoreState(good_adam).ok());
        optimizer.set_learning_rate(optimizer.learning_rate() *
                                    options.nonfinite_lr_backoff);
        nonfinite_total.Increment();
        lr_backoffs_total.Increment();
        ++stats.skipped_steps;
        ++result.skipped_steps;
        if (options.verbose) {
          CASCN_LOG(WARNING)
              << model.name() << " non-finite step " << global_step
              << " skipped (loss=" << batch_loss
              << " grad_norm=" << batch_grad_norm << "), lr backed off to "
              << optimizer.learning_rate();
        }
      } else {
        epoch_loss += batch_loss_sum;
        counted_samples += bn;
        grad_norm_sum += batch_grad_norm;
        grad_norm_gauge.Set(batch_grad_norm);
        const auto step_start = Clock::now();
        {
          CASCN_TRACE_SPAN("optimizer_step");
          optimizer.Step();
        }
        stats.optimizer_seconds += SecondsSince(step_start);
        for (size_t i = 0; i < params.size(); ++i)
          good_params[i] = params[i].value();
        good_adam = optimizer.SaveState();
      }
      ++global_step;
      ++stats.num_batches;
      batches_total.Increment();
      samples_total.Increment(static_cast<uint64_t>(bn));
      // Liveness for the stall watchdog: stamped once per batch so a hung
      // forward/backward reads as a stall, not as progress.
      if (options.heartbeat != nullptr) options.heartbeat->Beat();
      processed = batch_end;
    }
    stats.epoch = epoch;
    stats.train_loss = counted_samples == 0
                           ? 0.0
                           : epoch_loss / static_cast<double>(counted_samples);
    {
      CASCN_TRACE_SPAN("validate");
      const auto validation_start = Clock::now();
      stats.validation_msle = EvaluateMsle(model, dataset.validation);
      stats.validation_seconds = SecondsSince(validation_start);
    }
    stats.epoch_seconds = SecondsSince(epoch_start);
    const int stepped_batches = stats.num_batches - stats.skipped_steps;
    stats.grad_norm =
        stepped_batches == 0
            ? 0.0
            : grad_norm_sum / static_cast<double>(stepped_batches);
    stats.learning_rate = optimizer.learning_rate();
    stats.threads = static_cast<int>(parallel::ConfiguredThreads());
    epochs_total.Increment();
    result.history.push_back(stats);
    if (options.verbose) {
      CASCN_LOG(INFO) << model.name() << " epoch " << epoch
                      << " train_loss=" << stats.train_loss
                      << " val_msle=" << stats.validation_msle
                      << StrFormat(" time=%.2fs grad_norm=%.3g",
                                   stats.epoch_seconds, stats.grad_norm);
    }
    if (options.telemetry != nullptr)
      options.telemetry->Emit(stats.ToTelemetryJson(model.name()));
    bool stop = false;
    if (stats.validation_msle < result.best_validation_msle - 1e-9) {
      result.best_validation_msle = stats.validation_msle;
      result.best_epoch = epoch;
      stagnant = 0;
      best_weights.clear();
      for (const auto& p : params) best_weights.push_back(p.value());
    } else if (++stagnant > options.patience) {
      stop = true;
    }
    // Epoch boundary reached: persist the resumable state. Also written on
    // the final/stopping epoch regardless of the interval, so a resumed
    // process sees a finished run instead of redoing the last epoch.
    if (!options.checkpoint_path.empty() &&
        (epoch % options.checkpoint_interval == 0 || stop ||
         epoch == options.max_epochs)) {
      write_state(epoch);
    }
    if (stop) break;
  }
  // Restore the best-epoch weights.
  if (!best_weights.empty()) {
    for (size_t i = 0; i < params.size(); ++i)
      params[i].mutable_value() = best_weights[i];
  }
  return result;
}

}  // namespace cascn
