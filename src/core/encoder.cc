#include "core/encoder.h"

#include <algorithm>

#include "common/logging.h"
#include "graph/chebyshev.h"
#include "graph/snapshot.h"

namespace cascn {

int DecayInterval(double time, double window, int num_intervals) {
  CASCN_CHECK(window > 0 && num_intervals >= 1);
  const int m = static_cast<int>(time / window * num_intervals);
  return std::clamp(m, 0, num_intervals - 1);
}

Result<EncodedCascade> EncodeCascade(const CascadeSample& sample,
                                     const CascnConfig& config) {
  EncodedCascade enc;
  const Cascade& cascade = sample.observed;
  enc.active_n = std::min(cascade.size(), config.padded_size);

  // Snapshot sequence (Fig. 3) as dense signals.
  const std::vector<CascadeSnapshot> snapshots =
      BuildSnapshotSequence(cascade, config.MakeSnapshotOptions());
  enc.snapshot_signals.reserve(snapshots.size());
  enc.decay_intervals.reserve(snapshots.size());
  for (const CascadeSnapshot& snap : snapshots) {
    enc.snapshot_signals.push_back(snap.adjacency.ToDense());
    enc.decay_intervals.push_back(DecayInterval(
        snap.time, sample.observation_window, config.num_time_intervals));
  }

  // Cascade Laplacian: directed CasLaplacian by default, undirected
  // normalised Laplacian for the CasCN-Undirected ablation.
  CsrMatrix laplacian;
  if (config.variant == CascnVariant::kUndirected) {
    laplacian = UndirectedNormalizedLaplacian(cascade, config.padded_size);
  } else {
    CASCN_ASSIGN_OR_RETURN(
        laplacian, CascadeLaplacian(cascade, config.padded_size,
                                    config.MakeLaplacianOptions()));
  }
  enc.lambda_max = config.lambda_mode == LambdaMaxMode::kExact
                       ? EstimateLambdaMax(laplacian, enc.active_n)
                       : 2.0;
  const CsrMatrix scaled =
      ScaleLaplacian(laplacian, enc.lambda_max, enc.active_n);
  enc.cheb_basis = ChebyshevBasis(scaled, config.cheb_order, enc.active_n);
  return enc;
}

}  // namespace cascn
