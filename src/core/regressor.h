// CascadeRegressor: the interface every cascade-size predictor in this
// repository implements — CasCN and its variants (src/core) as well as all
// baselines (src/baselines). The shared Trainer/Evaluator drive models
// through this interface, so every Table III/IV cell runs the same loop.

#ifndef CASCN_CORE_REGRESSOR_H_
#define CASCN_CORE_REGRESSOR_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "tensor/variable.h"

namespace cascn {

/// A trainable model mapping an observed cascade to the predicted
/// log2(1 + future increment size).
class CascadeRegressor {
 public:
  virtual ~CascadeRegressor() = default;

  /// Builds the forward graph for one sample and returns the 1x1 prediction
  /// in log space. The returned Variable participates in autodiff, so the
  /// caller can attach a loss and run Backward().
  virtual ag::Variable PredictLog(const CascadeSample& sample) = 0;

  /// Trainable parameters for the optimizer.
  virtual std::vector<ag::Variable> TrainableParameters() = 0;

  /// Human-readable model name ("CasCN", "DeepHawkes", ...).
  virtual std::string name() const = 0;

  /// Invalidates any per-sample caches (e.g. when a model is reused on a
  /// different dataset). Default: no-op.
  virtual void ClearCache() {}

  /// Whether PredictLog may be called concurrently from multiple threads on
  /// this instance (the trainer then runs per-sample forward/backward on
  /// the shared pool; see src/parallel). Requires any internal per-sample
  /// caches to be thread-safe. Default: serial only.
  virtual bool SupportsConcurrentForward() const { return false; }

  /// Constant added to every prediction. The trainer calibrates this to the
  /// train-mean label before optimisation so networks only learn residuals
  /// (otherwise the output bias must crawl from 0 to the label mean, wasting
  /// most of the optimisation budget).
  void set_output_offset(double offset) { output_offset_ = offset; }
  double output_offset() const { return output_offset_; }

  /// PredictLog plus the calibrated offset; what training and evaluation
  /// actually use.
  ag::Variable PredictLogCalibrated(const CascadeSample& sample) {
    ag::Variable raw = PredictLog(sample);
    return output_offset_ == 0.0 ? raw
                                 : ag::AddScalar(raw, output_offset_);
  }

 private:
  double output_offset_ = 0.0;
};

}  // namespace cascn

#endif  // CASCN_CORE_REGRESSOR_H_
