// CasCN-Path (Table IV): the ablation that replaces sub-cascade snapshot
// sampling with DeepCas-style random walks. Users are embedded in a dense
// space, each walk becomes a sequence of user embeddings fed to an LSTM
// (all walks of a cascade are processed as one batch), the final hidden
// states are mean-pooled, and an MLP predicts the log increment size. The
// paper reports this variant losing the most accuracy, demonstrating the
// value of snapshot sampling.

#ifndef CASCN_CORE_CASCN_PATH_MODEL_H_
#define CASCN_CORE_CASCN_PATH_MODEL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/regressor.h"
#include "graph/random_walk.h"
#include "nn/embedding.h"
#include "nn/mlp.h"
#include "nn/module.h"
#include "nn/rnn_cells.h"

namespace cascn {

/// Hyper-parameters of the walk-based variant.
struct CascnPathConfig {
  int user_universe = 2000;
  int embedding_dim = 16;
  int hidden_dim = 12;
  int num_walks = 8;
  int walk_length = 8;
  int mlp_hidden1 = 32;
  int mlp_hidden2 = 16;
  uint64_t seed = 42;
};

/// The CasCN-Path variant.
class CascnPathModel : public nn::Module, public CascadeRegressor {
 public:
  explicit CascnPathModel(const CascnPathConfig& config);

  ag::Variable PredictLog(const CascadeSample& sample) override;
  std::vector<ag::Variable> TrainableParameters() override {
    return Parameters();
  }
  std::string name() const override { return "CasCN-Path"; }
  void ClearCache() override { walk_cache_.clear(); }

 private:
  /// Walks are sampled once per sample (seeded deterministically by the
  /// cascade id) and cached as per-step user-id columns, keyed by content
  /// fingerprint so recycled sample addresses never alias stale walks.
  const std::vector<std::vector<int>>& WalkUsers(const CascadeSample& sample);

  CascnPathConfig config_;
  std::unique_ptr<nn::Embedding> user_embedding_;
  std::unique_ptr<nn::LstmCell> lstm_;
  std::unique_ptr<nn::Mlp> mlp_;
  // walk_cache_[fingerprint][t] = user ids at walk position t (one per walk).
  std::unordered_map<uint64_t, std::vector<std::vector<int>>> walk_cache_;
};

}  // namespace cascn

#endif  // CASCN_CORE_CASCN_PATH_MODEL_H_
