// StreamingPredictor: online cascade-growth forecasting (the paper's
// future-work item 2 — "efficient incorporation of updates").
//
// Wraps a trained CascnModel and maintains one live cascade: each observed
// adoption is appended with AddAdoption(), and CurrentPrediction() returns
// the model's forecast for the cascade as observed so far. Predictions are
// cached and invalidated on update, so repeated queries between adoptions
// are free; the underlying per-cascade encoding (Laplacian, Chebyshev
// basis) is rebuilt only when the cascade actually changed.

#ifndef CASCN_CORE_STREAMING_PREDICTOR_H_
#define CASCN_CORE_STREAMING_PREDICTOR_H_

#include <memory>
#include <optional>
#include <vector>

#include "common/result.h"
#include "core/cascn_model.h"

namespace cascn {

/// Live forecasting for one evolving cascade.
class StreamingPredictor {
 public:
  /// `model` must be trained and outlive the predictor. The observation
  /// window sets the time-decay bucketing; adoptions after the window are
  /// rejected.
  StreamingPredictor(CascnModel* model, double observation_window);

  /// Starts the cascade: the original post by `root_user` at time 0.
  /// Pre: not already started.
  void Start(int root_user);

  /// Appends one adoption. Returns InvalidArgument if the cascade has not
  /// started, the parent is unknown, the time is not monotone, or the time
  /// falls outside the observation window.
  Status AddAdoption(int user, int parent_node, double time);

  /// Number of adoptions so far (0 before Start).
  int size() const { return static_cast<int>(events_.size()); }

  /// Forecast of log2(1 + future increment) for the cascade as observed so
  /// far. Pre: started.
  double CurrentPredictionLog();

  /// Forecast as an expected adoption count.
  double CurrentPredictionCount();

 private:
  const CascadeSample& CurrentSample();

  CascnModel* model_;
  double observation_window_;
  std::vector<AdoptionEvent> events_;
  // Rebuilt lazily after each update; the model caches encodings by content
  // fingerprint, so rebuilding in place is safe.
  std::unique_ptr<CascadeSample> sample_;
  bool sample_stale_ = true;
  std::optional<double> cached_prediction_;
};

}  // namespace cascn

#endif  // CASCN_CORE_STREAMING_PREDICTOR_H_
