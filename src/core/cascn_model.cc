#include "core/cascn_model.h"

#include <cmath>

#include "common/logging.h"
#include "nn/init.h"

namespace cascn {

std::string VariantName(CascnVariant variant) {
  switch (variant) {
    case CascnVariant::kDefault:
      return "CasCN";
    case CascnVariant::kGru:
      return "CasCN-GRU";
    case CascnVariant::kGcnLstm:
      return "CasCN-GL";
    case CascnVariant::kUndirected:
      return "CasCN-Undirected";
    case CascnVariant::kNoTimeDecay:
      return "CasCN-Time";
  }
  return "CasCN-?";
}

CascnModel::CascnModel(const CascnConfig& config) : config_(config) {
  Rng rng(config.seed);
  switch (config.variant) {
    case CascnVariant::kGru:
      conv_gru_ = std::make_unique<nn::GraphConvGruCell>(
          config.padded_size, config.hidden_dim, config.cheb_order, rng);
      RegisterSubmodule("conv_gru", conv_gru_.get());
      break;
    case CascnVariant::kGcnLstm:
      // GCN over each snapshot, mean-pooled, then a plain LSTM.
      gl_conv_ = std::make_unique<nn::ChebConv>(
          config.padded_size, config.hidden_dim, config.cheb_order, rng);
      gl_lstm_ = std::make_unique<nn::LstmCell>(config.hidden_dim,
                                                config.hidden_dim, rng);
      RegisterSubmodule("gl_conv", gl_conv_.get());
      RegisterSubmodule("gl_lstm", gl_lstm_.get());
      break;
    default:
      conv_lstm_ = std::make_unique<nn::GraphConvLstmCell>(
          config.padded_size, config.hidden_dim, config.cheb_order, rng);
      RegisterSubmodule("conv_lstm", conv_lstm_.get());
      break;
  }
  if (config.variant != CascnVariant::kNoTimeDecay) {
    // softplus(0.5413) ~= 1: decay factors start neutral.
    decay_raw_ = RegisterParameter(
        "decay_raw", Tensor(config.num_time_intervals, 1, 0.5413));
  }
  if (config.attention_pooling) {
    attn_w_ = RegisterParameter(
        "attn_w", nn::XavierUniform(config.hidden_dim, config.hidden_dim, rng));
    attn_v_ = RegisterParameter(
        "attn_v", nn::XavierUniform(config.hidden_dim, 1, rng));
  }
  mlp_ = std::make_unique<nn::Mlp>(
      std::vector<int>{config.hidden_dim, config.mlp_hidden1,
                       config.mlp_hidden2, 1},
      nn::Activation::kRelu, rng);
  RegisterSubmodule("mlp", mlp_.get());
}

std::string CascnModel::name() const { return VariantName(config_.variant); }

std::shared_ptr<const EncodedCascade> CascnModel::Encoded(
    const CascadeSample& sample) {
  const uint64_t key = SampleFingerprint(sample);
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second.lru_it);
      return it->second.encoded;
    }
  }
  // Encoding is the expensive part; do it outside the lock so concurrent
  // misses on *different* samples don't serialize.
  auto encoded = EncodeCascade(sample, config_);
  CASCN_CHECK(encoded.ok()) << "encoding failed for cascade "
                            << sample.observed.id() << ": "
                            << encoded.status().ToString();
  auto fresh =
      std::make_shared<const EncodedCascade>(std::move(encoded).value());
  std::lock_guard<std::mutex> lock(cache_mutex_);
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    // Another thread encoded the same sample first; keep its entry.
    cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second.lru_it);
    return it->second.encoded;
  }
  cache_lru_.push_front(key);
  auto& entry = cache_[key];
  entry.encoded = std::move(fresh);
  entry.lru_it = cache_lru_.begin();
  auto result = entry.encoded;
  const size_t capacity =
      config_.encoding_cache_capacity > 0
          ? static_cast<size_t>(config_.encoding_cache_capacity)
          : 1;
  while (cache_.size() > capacity) {
    cache_.erase(cache_lru_.back());
    cache_lru_.pop_back();
  }
  return result;
}

double CascnModel::EncodedLambdaMax(const CascadeSample& sample) {
  return Encoded(sample)->lambda_max;
}

ag::Variable CascnModel::DecayFactor(int interval) const {
  CASCN_CHECK(decay_raw_.defined());
  return ag::Softplus(ag::SliceRows(decay_raw_, interval, 1));
}

ag::Variable CascnModel::ForwardPooled(const CascadeSample& sample) {
  const std::shared_ptr<const EncodedCascade> enc_ptr = Encoded(sample);
  const EncodedCascade& enc = *enc_ptr;
  const bool use_decay = config_.variant != CascnVariant::kNoTimeDecay;

  if (config_.variant == CascnVariant::kGcnLstm) {
    // GCN per snapshot -> node-mean -> plain LSTM -> decayed sum (1 x d_h).
    nn::RnnState state = gl_lstm_->InitialState(1);
    ag::Variable pooled_sum;
    for (size_t t = 0; t < enc.snapshot_signals.size(); ++t) {
      const ag::Variable x = ag::Variable::Leaf(enc.snapshot_signals[t]);
      const ag::Variable conv =
          ag::Relu(gl_conv_->Forward(enc.cheb_basis, x));
      state = gl_lstm_->Step(ag::MeanRows(conv), state);
      ag::Variable h = state.h;
      if (use_decay)
        h = ag::ScaleByScalar(h, DecayFactor(enc.decay_intervals[t]));
      pooled_sum = pooled_sum.defined() ? ag::Add(pooled_sum, h) : h;
    }
    return pooled_sum;
  }

  // Convolutional recurrence (default, GRU, undirected, no-decay).
  nn::RnnState state = config_.variant == CascnVariant::kGru
                           ? conv_gru_->InitialState()
                           : conv_lstm_->InitialState();
  ag::Variable sum;  // n x d_h accumulated over time (Eq. 17)
  std::vector<ag::Variable> per_step;  // attention-pooling extension
  for (size_t t = 0; t < enc.snapshot_signals.size(); ++t) {
    const ag::Variable x = ag::Variable::Leaf(enc.snapshot_signals[t]);
    state = config_.variant == CascnVariant::kGru
                ? conv_gru_->Step(enc.cheb_basis, x, state)
                : conv_lstm_->Step(enc.cheb_basis, x, state);
    ag::Variable h = state.h;
    if (use_decay)
      h = ag::ScaleByScalar(h, DecayFactor(enc.decay_intervals[t]));
    if (config_.attention_pooling) {
      per_step.push_back(ag::SumRows(h));  // 1 x d_h per snapshot
    } else {
      sum = sum.defined() ? ag::Add(sum, h) : h;
    }
  }
  if (config_.attention_pooling) {
    // Future-work extension: softmax attention over the per-snapshot
    // representations instead of plain summation.
    const ag::Variable stacked = ag::ConcatRows(per_step);  // T x d_h
    const ag::Variable scores =
        ag::MatMul(ag::Tanh(ag::MatMul(stacked, attn_w_)), attn_v_);
    const ag::Variable attention = ag::SoftmaxRows(ag::Transpose(scores));
    return ag::MatMul(attention, stacked);  // 1 x d_h
  }
  // Node sum (Eq. 17 pools by summation, keeping the representation
  // size-aware), rescaled by the sequence-length bound to keep MLP inputs
  // in a moderate range.
  return ag::ScalarMul(ag::SumRows(sum),
                       1.0 / config_.max_sequence_length);
}

ag::Variable CascnModel::PredictLog(const CascadeSample& sample) {
  return mlp_->Forward(ForwardPooled(sample));
}

Tensor CascnModel::Representation(const CascadeSample& sample) {
  return ForwardPooled(sample).value();
}

}  // namespace cascn
