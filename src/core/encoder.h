// Per-cascade preprocessing shared by every forward pass: the snapshot
// signal sequence (Fig. 3), the cascade Laplacian scaled for Chebyshev
// filtering (Algorithm 1 + Eq. 4), the Chebyshev basis, and the time-decay
// interval of each snapshot (Eq. 15). All of it depends only on the sample
// and the configuration, so models compute it once and cache it.

#ifndef CASCN_CORE_ENCODER_H_
#define CASCN_CORE_ENCODER_H_

#include <vector>

#include "common/result.h"
#include "core/config.h"
#include "data/dataset.h"
#include "tensor/csr_matrix.h"
#include "tensor/tensor.h"

namespace cascn {

/// Precomputed per-sample inputs of the CasCN forward pass.
struct EncodedCascade {
  /// Dense padded adjacency signal X_t per snapshot (each n x n).
  std::vector<Tensor> snapshot_signals;
  /// Time-decay interval index m(t_j) per snapshot, in [0, l).
  std::vector<int> decay_intervals;
  /// Chebyshev basis {T_0..T_{K-1}} of the scaled cascade Laplacian.
  std::vector<CsrMatrix> cheb_basis;
  /// Observed nodes actually represented (<= padded size).
  int active_n = 0;
  /// lambda_max used for rescaling (exact or 2.0).
  double lambda_max = 2.0;
};

/// Encodes one sample under `config` (the variant selects directed vs.
/// undirected Laplacian; lambda_mode selects exact vs. approximate
/// lambda_max). Fails only if the CasLaplacian stationary iteration fails.
Result<EncodedCascade> EncodeCascade(const CascadeSample& sample,
                                     const CascnConfig& config);

/// Eq. 15: the decay interval of an adoption at `time` within an
/// observation window of length `window` split into `num_intervals`.
int DecayInterval(double time, double window, int num_intervals);

}  // namespace cascn

#endif  // CASCN_CORE_ENCODER_H_
