// CascnModel: the paper's primary contribution (Section IV, Fig. 2).
//
// Pipeline per cascade:
//   1. Sample the cascade as a sub-cascade snapshot sequence and build the
//      CasLaplacian + Chebyshev basis (core/encoder.h).
//   2. Thread the snapshot signals through a graph-convolutional LSTM
//      (Eq. 12-14), producing hidden states h_1..h_T (each n x d_h).
//   3. Weight each hidden state by a learned, non-parametric time-decay
//      factor lambda_{m(t)} (Eq. 15-16) and sum-pool over time (Eq. 17).
//   4. Mean-pool over nodes and regress the log increment size with an MLP
//      (Eq. 18) under squared log error (Eq. 19).
//
// The ablation variants of Table IV are selected by CascnConfig::variant:
// GRU gating, GCN-then-LSTM, undirected Laplacian, or no time decay. The
// walk-sampling variant CasCN-Path lives in cascn_path_model.h because its
// input pipeline is entirely different.

#ifndef CASCN_CORE_CASCN_MODEL_H_
#define CASCN_CORE_CASCN_MODEL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/config.h"
#include "core/encoder.h"
#include "core/regressor.h"
#include "nn/graph_rnn_cells.h"
#include "nn/mlp.h"
#include "nn/module.h"
#include "nn/rnn_cells.h"

namespace cascn {

/// CasCN and its snapshot-based variants.
class CascnModel : public nn::Module, public CascadeRegressor {
 public:
  explicit CascnModel(const CascnConfig& config);

  ag::Variable PredictLog(const CascadeSample& sample) override;
  std::vector<ag::Variable> TrainableParameters() override {
    return Parameters();
  }
  std::string name() const override;
  void ClearCache() override {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    cache_.clear();
    cache_lru_.clear();
  }

  /// The encoding cache is mutex-guarded and parameters are only read during
  /// forward, so per-sample graphs may be built concurrently (gradient
  /// accumulation safety is the trainer's job via ag::ScopedGradCapture).
  bool SupportsConcurrentForward() const override { return true; }

  /// Number of cached per-sample encodings (bounded by
  /// config.encoding_cache_capacity).
  size_t EncodingCacheSize() const {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    return cache_.size();
  }

  /// The pooled cascade representation h(C_i(t)) (1 x hidden_dim) after a
  /// forward pass; used by the Fig. 9 feature-visualisation experiment.
  Tensor Representation(const CascadeSample& sample);

  const CascnConfig& config() const { return config_; }

  /// lambda_max the encoder chose for this sample (Table V analysis).
  double EncodedLambdaMax(const CascadeSample& sample);

 private:
  /// Cached per-sample encoding, keyed by SampleFingerprint so a recycled
  /// heap address (e.g. the per-update samples of a streaming session) can
  /// never alias a previous cascade's encoding. LRU-bounded by
  /// config.encoding_cache_capacity. Entries are shared_ptr so a concurrent
  /// eviction can never invalidate an encoding another thread is reading.
  std::shared_ptr<const EncodedCascade> Encoded(const CascadeSample& sample);

  /// Shared forward: pooled 1 x hidden representation.
  ag::Variable ForwardPooled(const CascadeSample& sample);

  /// Softplus-positive decay factor for interval m, as a 1x1 Variable.
  ag::Variable DecayFactor(int interval) const;

  CascnConfig config_;
  std::unique_ptr<nn::GraphConvLstmCell> conv_lstm_;  // default & ablations
  std::unique_ptr<nn::GraphConvGruCell> conv_gru_;    // kGru
  std::unique_ptr<nn::ChebConv> gl_conv_;             // kGcnLstm
  std::unique_ptr<nn::LstmCell> gl_lstm_;             // kGcnLstm
  ag::Variable decay_raw_;  // l x 1; lambda_m = softplus(raw_m)
  // Attention-pooling extension (config.attention_pooling).
  ag::Variable attn_w_;  // hidden x hidden
  ag::Variable attn_v_;  // hidden x 1
  std::unique_ptr<nn::Mlp> mlp_;
  struct CacheEntry {
    std::shared_ptr<const EncodedCascade> encoded;
    std::list<uint64_t>::iterator lru_it;
  };
  mutable std::mutex cache_mutex_;  // guards cache_ and cache_lru_
  std::unordered_map<uint64_t, CacheEntry> cache_;
  std::list<uint64_t> cache_lru_;  // front = most recently used
};

}  // namespace cascn

#endif  // CASCN_CORE_CASCN_MODEL_H_
