// Shared-pool data parallelism for the trainer and tensor kernels.
//
// A single process-wide ThreadPool is created lazily on first use, sized by
// ConfiguredThreads(): the CASCN_THREADS environment variable when set (a
// value of 1 forces the fully serial path and never creates the pool),
// otherwise HardwareConcurrency(). Benchmarks and tests override the size at
// runtime with SetThreads(); the pool itself is rebuilt lazily when the
// configured size changes.
//
// ParallelFor(n, body) runs body(i) for i in [0, n). Guarantees:
//   * The calling thread always participates, claiming chunks from the same
//     atomic counter as pool helpers. Nested ParallelFor calls (a kernel
//     inside a trainer sample) therefore never deadlock: even when every
//     pool worker is busy, the caller drains its own loop.
//   * Work is claimed in chunks of contiguous indices; which *thread* runs
//     an index is nondeterministic, so bodies must write to disjoint,
//     index-addressed outputs. Determinism of final results is the caller's
//     contract (the trainer re-establishes a fixed order with a tree
//     reduction over sample indices).
//   * The first exception thrown by any body is captured, remaining chunks
//     are abandoned, and the exception is rethrown on the calling thread
//     after all helpers retire.

#ifndef CASCN_PARALLEL_PARALLEL_FOR_H_
#define CASCN_PARALLEL_PARALLEL_FOR_H_

#include <cstddef>
#include <functional>

namespace cascn::parallel {

/// Threads the shared pool is sized for: CASCN_THREADS env when set and
/// valid, else HardwareConcurrency(). Always at least 1.
size_t ConfiguredThreads();

/// Overrides ConfiguredThreads() for the rest of the process (benchmarks,
/// determinism tests). 0 restores the environment/hardware default.
void SetThreads(size_t n);

/// Runs body(i) for every i in [0, n). Serial when n < 2 or
/// ConfiguredThreads() == 1.
void ParallelFor(size_t n, const std::function<void(size_t)>& body);

/// Runs body(begin, end) over disjoint ranges covering [0, n), each at most
/// `grain` long. Serial (one full-range call) when ConfiguredThreads() == 1
/// or n <= grain.
void ParallelForRange(size_t n, size_t grain,
                      const std::function<void(size_t, size_t)>& body);

}  // namespace cascn::parallel

#endif  // CASCN_PARALLEL_PARALLEL_FOR_H_
