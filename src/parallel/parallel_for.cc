#include "parallel/parallel_for.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>

#include "parallel/thread_pool.h"

namespace cascn::parallel {
namespace {

size_t ThreadsFromEnvironment() {
  if (const char* env = std::getenv("CASCN_THREADS")) {
    char* end = nullptr;
    const long value = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && value > 0) {
      return static_cast<size_t>(value);
    }
  }
  return HardwareConcurrency();
}

std::atomic<size_t> g_override{0};

struct SharedPool {
  std::mutex mutex;
  std::unique_ptr<ThreadPool> pool;
  size_t pool_threads = 0;
};

SharedPool& GlobalPool() {
  static SharedPool* shared = new SharedPool();  // leaked: outlives main
  return *shared;
}

// Grabs the shared pool, (re)building it when the configured size changed.
// Returns nullptr when threads == 1 (serial path never creates the pool).
ThreadPool* PoolFor(size_t threads) {
  if (threads <= 1) return nullptr;
  SharedPool& shared = GlobalPool();
  std::lock_guard<std::mutex> lock(shared.mutex);
  if (!shared.pool || shared.pool_threads != threads) {
    shared.pool.reset();  // join old workers before spawning the new set
    shared.pool = std::make_unique<ThreadPool>(threads - 1);
    shared.pool_threads = threads;
  }
  return shared.pool.get();
}

// One ParallelFor invocation. Helpers hold a shared_ptr so a helper that
// starts after the caller has already finished (and possibly thrown) still
// touches valid memory and simply finds no chunks left.
//
// A helper counts itself in `active_helpers` only once it actually STARTS
// running, never at submit time. This is what makes nested ParallelFor
// deadlock-free: when every pool worker is busy with outer-loop chunks, an
// inner loop's queued helper tasks may never start — the inner caller drains
// all inner chunks itself and its completion wait must not block on tasks
// that are stuck behind it in the pool queue. A helper that starts late
// (after the caller returned) finds the chunk counter exhausted and exits
// without touching `body`; the mutex hand-off makes that exhausted counter
// visible before the helper can attempt a claim.
struct LoopState {
  size_t n = 0;
  size_t grain = 1;
  size_t num_chunks = 0;
  const std::function<void(size_t, size_t)>* body = nullptr;

  std::atomic<size_t> next_chunk{0};
  std::atomic<bool> stop{false};

  std::mutex mutex;
  std::condition_variable done;
  size_t active_helpers = 0;
  std::exception_ptr error;

  void RunChunks() {
    while (!stop.load(std::memory_order_relaxed)) {
      const size_t chunk = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= num_chunks) return;
      const size_t begin = chunk * grain;
      const size_t end = std::min(n, begin + grain);
      try {
        (*body)(begin, end);
      } catch (...) {
        stop.store(true, std::memory_order_relaxed);
        // Exhaust the counter: the caller rethrows and returns once active
        // helpers drain, after which `body` is dead — a helper starting
        // later must be unable to claim a chunk.
        next_chunk.store(num_chunks, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(mutex);
        if (!error) error = std::current_exception();
        return;
      }
    }
  }

  // Pool-task entry point: register as active, work, deregister.
  void RunAsHelper() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      ++active_helpers;
    }
    RunChunks();
    std::lock_guard<std::mutex> lock(mutex);
    if (--active_helpers == 0) done.notify_all();
  }
};

void RunLoop(size_t n, size_t grain,
             const std::function<void(size_t, size_t)>& body) {
  const size_t threads = ConfiguredThreads();
  if (threads <= 1 || n <= grain) {
    if (n > 0) body(0, n);
    return;
  }

  auto state = std::make_shared<LoopState>();
  state->n = n;
  state->grain = grain;
  state->num_chunks = (n + grain - 1) / grain;
  state->body = &body;

  ThreadPool* pool = PoolFor(threads);
  const size_t helpers =
      std::min(threads - 1, state->num_chunks - 1);
  for (size_t i = 0; i < helpers; ++i) {
    pool->Submit([state] { state->RunAsHelper(); });
  }

  state->RunChunks();  // caller participates: nested calls cannot deadlock

  std::unique_lock<std::mutex> lock(state->mutex);
  state->done.wait(lock, [&] { return state->active_helpers == 0; });
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace

size_t ConfiguredThreads() {
  const size_t forced = g_override.load(std::memory_order_relaxed);
  if (forced > 0) return forced;
  static const size_t from_env = ThreadsFromEnvironment();
  return from_env;
}

void SetThreads(size_t n) { g_override.store(n, std::memory_order_relaxed); }

void ParallelFor(size_t n, const std::function<void(size_t)>& body) {
  ParallelForRange(n, 1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) body(i);
  });
}

void ParallelForRange(size_t n, size_t grain,
                      const std::function<void(size_t, size_t)>& body) {
  RunLoop(n, std::max<size_t>(1, grain), body);
}

}  // namespace cascn::parallel
