#include "parallel/thread_pool.h"

#include <algorithm>

namespace cascn::parallel {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, num_threads);
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

size_t HardwareConcurrency() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

}  // namespace cascn::parallel
