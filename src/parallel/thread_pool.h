// Fixed-size worker pool shared by every multi-threaded subsystem: the
// trainer's intra-batch data parallelism and row-parallel tensor kernels
// (through parallel_for.h's lazily-created shared pool) and the serving
// front end's long-running request workers (a dedicated instance per
// PredictionService). Nothing in the repository spawns raw std::threads for
// worker pools anymore.

#ifndef CASCN_PARALLEL_THREAD_POOL_H_
#define CASCN_PARALLEL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cascn::parallel {

/// A fixed set of worker threads draining a FIFO task queue. Destruction
/// waits for all submitted tasks to finish.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (minimum 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution on some worker.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has completed.
  void Wait();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

/// Number of hardware threads, at least 1.
size_t HardwareConcurrency();

}  // namespace cascn::parallel

#endif  // CASCN_PARALLEL_THREAD_POOL_H_
