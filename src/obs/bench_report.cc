#include "obs/bench_report.h"

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <sstream>

#include "common/string_util.h"
#include "obs/profiler.h"
#include "obs/telemetry.h"

namespace cascn::obs {

BenchReport::BenchReport(std::string name)
    : name_(std::move(name)),
      created_unix_(static_cast<int64_t>(std::time(nullptr))) {}

BenchReport& BenchReport::AddConfig(std::string_view key,
                                    std::string_view value) {
  // JsonObjectBuilder handles key/value escaping; reuse one pair at a time.
  const std::string obj = JsonObjectBuilder().Add(key, value).Build();
  if (!config_body_.empty()) config_body_ += ", ";
  config_body_ += obj.substr(1, obj.size() - 2);
  return *this;
}

BenchReport& BenchReport::AddConfig(std::string_view key, double value) {
  const std::string obj = JsonObjectBuilder().Add(key, value).Build();
  if (!config_body_.empty()) config_body_ += ", ";
  config_body_ += obj.substr(1, obj.size() - 2);
  return *this;
}

BenchReport& BenchReport::AddConfig(std::string_view key, int64_t value) {
  const std::string obj = JsonObjectBuilder().Add(key, value).Build();
  if (!config_body_.empty()) config_body_ += ", ";
  config_body_ += obj.substr(1, obj.size() - 2);
  return *this;
}

BenchReport& BenchReport::SetWallClockSeconds(double seconds) {
  wall_clock_seconds_ = seconds;
  return *this;
}

BenchReport& BenchReport::AddHistogram(std::string_view name,
                                       const Histogram::Snapshot& snapshot) {
  if (!histograms_body_.empty()) histograms_body_ += ", ";
  histograms_body_ += StrFormat(
      "\"%.*s\": {\"count\": %llu, \"mean\": %.3f, \"p50\": %.1f, "
      "\"p90\": %.1f, \"p95\": %.1f, \"p99\": %.1f, \"max\": %llu}",
      static_cast<int>(name.size()), name.data(),
      static_cast<unsigned long long>(snapshot.count), snapshot.mean,
      snapshot.Percentile(0.50), snapshot.Percentile(0.90),
      snapshot.Percentile(0.95), snapshot.Percentile(0.99),
      static_cast<unsigned long long>(snapshot.max));
  return *this;
}

BenchReport& BenchReport::AddResult(std::string json_object) {
  results_.push_back(std::move(json_object));
  return *this;
}

BenchReport& BenchReport::CaptureProfile() {
  profile_json_ = Profiler::Get().TakeSnapshot().ToJson();
  return *this;
}

BenchReport& BenchReport::CaptureMetrics(const MetricsRegistry& registry) {
  metrics_json_ = registry.JsonSnapshot();
  return *this;
}

std::string BenchReport::ToJson() const {
  std::ostringstream out;
  const std::string name_kv =
      JsonObjectBuilder().Add("name", name_).Add("git_sha", GitSha()).Build();
  out << "{\n  \"schema_version\": 1,\n  "
      << name_kv.substr(1, name_kv.size() - 2) << ",\n";
  out << StrFormat("  \"created_unix\": %lld,\n",
                   static_cast<long long>(created_unix_));
  out << "  \"config\": {" << config_body_ << "},\n";
  out << StrFormat("  \"wall_clock_seconds\": %.4f,\n", wall_clock_seconds_);
  out << "  \"histograms\": {" << histograms_body_ << "},\n";
  out << "  \"results\": [";
  for (size_t i = 0; i < results_.size(); ++i)
    out << (i == 0 ? "\n    " : ",\n    ") << results_[i];
  out << (results_.empty() ? "" : "\n  ") << "],\n";
  out << "  \"profile\": "
      << (profile_json_.empty() ? "{}" : profile_json_) << ",\n";
  out << "  \"metrics\": " << (metrics_json_.empty() ? "{}" : metrics_json_)
      << "\n}\n";
  return out.str();
}

Status BenchReport::WriteFile(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr)
    return Status::IoError("cannot open bench report file: " + path);
  const std::string json = ToJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), file);
  std::fclose(file);
  if (written != json.size())
    return Status::IoError("short write to bench report file: " + path);
  return Status::OK();
}

Status BenchReport::WriteDefault() const {
  return WriteFile(DefaultPath(name_));
}

std::string BenchReport::DefaultPath(const std::string& name) {
  const char* dir = std::getenv("CASCN_BENCH_REPORT_DIR");
  const std::string file = "BENCH_" + name + ".json";
  if (dir == nullptr || dir[0] == '\0') return file;
  std::string prefix(dir);
  if (prefix.back() != '/') prefix += '/';
  return prefix + file;
}

std::string BenchReport::GitSha() {
#ifdef CASCN_GIT_SHA
  if (std::string_view(CASCN_GIT_SHA) != "") return CASCN_GIT_SHA;
#endif
  const char* env = std::getenv("CASCN_GIT_SHA");
  if (env != nullptr && env[0] != '\0') return env;
  return "unknown";
}

}  // namespace cascn::obs
