// RequestContext: the identity one request carries across threads, queues,
// and shards.
//
// The PR 2 tracing layer answers "where did time go on this thread"; the
// request context answers "what happened to THIS request" as it crosses
// router -> admission -> shard queue -> worker -> session. A context is
// minted once at the edge (the shard router, or a bare PredictionService
// submit) and then passed explicitly — never through thread-locals, which
// cannot survive the enqueue/dequeue thread hop — so every span, flight-
// recorder record, and SLI sample downstream can be stamped with the same
// 64-bit trace id.
//
// Trace ids are never zero: zero means "no context" everywhere (spans
// without a request, flight records from untracked paths), so a context is
// cheap to test for and a forgotten propagation is visible in the output
// rather than silently aliased to a real request.

#ifndef CASCN_OBS_REQUEST_CONTEXT_H_
#define CASCN_OBS_REQUEST_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

namespace cascn::obs {

/// Fresh process-unique nonzero trace id: a splitmix64-mixed atomic
/// counter, so ids from concurrent submitters are well scattered (useful as
/// Chrome flow-event ids) yet allocation is one relaxed fetch_add.
uint64_t NewTraceId();

/// Identity and budget of one in-flight request. Copyable, explicitly
/// propagated; see file comment.
struct RequestContext {
  /// Nonzero for a real request; 0 = "no context".
  uint64_t trace_id = 0;
  /// Span id of the submitting side, for parent/child linkage in trace
  /// consumers (the Chrome export links hops by flow events keyed on
  /// trace_id; parent_span disambiguates retries that reuse a trace id).
  uint64_t parent_span = 0;
  /// Tenant the request was admitted under; empty for untenanted callers.
  std::string tenant;
  /// Session the request addresses.
  std::string session_id;
  /// Deadline budget the caller asked for, in the Submit* convention
  /// (> 0 explicit ms, 0 service default, < 0 none).
  double deadline_ms = 0.0;
  /// Absolute deadline, resolved ONCE at the edge that minted the context.
  /// Internal re-dispatch (retry, handoff retry, hedge) must carry this
  /// forward rather than re-arming `deadline_ms` from scratch — the caller's
  /// budget covers the whole request, not each attempt. When set, services
  /// honor it verbatim instead of re-deriving a deadline at enqueue.
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline{};
  /// Cooperative-cancel flag, shared between racing dispatches of the same
  /// logical request (a hedge and its primary). A worker that dequeues a
  /// request whose flag is already set fails it fast with Cancelled instead
  /// of executing — the other racer already produced the answer. Null for
  /// ordinary requests.
  std::shared_ptr<std::atomic<bool>> cancel;

  bool valid() const { return trace_id != 0; }
  bool cancelled() const {
    return cancel != nullptr && cancel->load(std::memory_order_relaxed);
  }

  /// Mints a context with a fresh trace id.
  static RequestContext New(std::string tenant, std::string session_id,
                            double deadline_ms = 0.0);
};

}  // namespace cascn::obs

#endif  // CASCN_OBS_REQUEST_CONTEXT_H_
