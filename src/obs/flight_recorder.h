// Black-box flight recorder: an always-on, fixed-size, lock-free ring of
// compact per-request records.
//
// Tracing and metrics answer questions you knew to ask in advance; the
// flight recorder answers "what were the last few thousand requests doing
// right before it went wrong". Every request that completes (or is
// rejected) appends one 72-byte record — trace id, tenant, session, shard,
// queue wait, execution time, terminal status, and which fault points
// fired — with no allocation, no lock, and no branching on an enable flag:
// the recorder is ALWAYS on, which is the point of a black box.
//
// On an anomaly trigger (load shed, deadline exceeded, shard crash, reload
// rollback, handoff retry) the owner calls TriggerDump(reason) and the ring
// contents are appended to a JSON-lines file: one header object naming the
// reason, then one object per record, oldest first. Demo and bench binaries
// can also dump on demand. Dumps are rate-limited only by the caller; the
// append path never blocks on a dump in progress — a record being written
// while the dump reads its slot is simply skipped (its seqlock is odd).
//
// Concurrency: each slot is a seqlock — an atomic sequence word (odd while
// a writer owns the slot) plus the payload stored as relaxed atomic words.
// Writers claim slots round-robin via one fetch_add on the ring head; a
// writer that collides with a slot still being written (ring lapped within
// one write) drops its record and counts the drop rather than spinning.
// Readers (Snapshot/dump) validate the sequence word before and after
// copying and skip torn slots. No thread ever waits on another.

#ifndef CASCN_OBS_FLIGHT_RECORDER_H_
#define CASCN_OBS_FLIGHT_RECORDER_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/status.h"

namespace cascn::obs {

/// Request operation recorded in the flight record.
enum class FlightOp : uint8_t {
  kUnknown = 0,
  kCreate = 1,
  kAppend = 2,
  kPredict = 3,
  kClose = 4,
  kRoute = 5,  // router-level rejection before any shard was reached
};

std::string_view FlightOpName(FlightOp op);

/// Fault points observed while serving the request, as bits in
/// FlightRecord::fault_bits.
enum FlightFault : uint16_t {
  kFaultBitSlowPredict = 1u << 0,   // serve.slow_predict delay fired
  kFaultBitExtraPredict = 1u << 1,  // per-shard extra predict point fired
  kFaultBitStale = 1u << 2,         // answered from the stale-read cache
};

/// One compact request record. Trivially copyable, fixed-size, no pointers:
/// the ring stores it as raw 64-bit words. Tenant/session are truncated to
/// their first 15 bytes — enough to identify, cheap to store.
struct FlightRecord {
  static constexpr size_t kNameCapacity = 16;  // incl. NUL

  uint64_t seq_no = 0;    // assigned by Append: global arrival order
  uint64_t trace_id = 0;  // 0 = request had no context
  uint64_t queue_wait_ns = 0;
  uint64_t exec_ns = 0;
  int16_t shard_id = -1;  // -1 = router level / unsharded service
  FlightOp op = FlightOp::kUnknown;
  uint8_t status = 0;  // StatusCode of the terminal status
  uint16_t fault_bits = 0;
  uint16_t reserved = 0;
  char tenant[kNameCapacity] = {};
  char session[kNameCapacity] = {};

  void set_tenant(std::string_view value) { CopyName(tenant, value); }
  void set_session(std::string_view value) { CopyName(session, value); }

 private:
  static void CopyName(char (&dest)[kNameCapacity], std::string_view value) {
    const size_t n = std::min(value.size(), kNameCapacity - 1);
    std::memcpy(dest, value.data(), n);
    dest[n] = '\0';
  }
};

static_assert(std::is_trivially_copyable_v<FlightRecord>,
              "flight records are stored as raw words");
static_assert(sizeof(FlightRecord) % sizeof(uint64_t) == 0,
              "flight records must pack into 64-bit words");

/// Fixed-capacity lock-free ring of FlightRecords. See file comment for
/// the concurrency model. All methods are thread-safe.
class FlightRecorder {
 public:
  /// `capacity` is rounded up to a power of two (minimum 8).
  explicit FlightRecorder(size_t capacity = 4096);

  size_t capacity() const { return slots_.size(); }

  /// Appends `record` (seq_no is assigned internally; the caller's value is
  /// ignored). Wait-free: one fetch_add plus relaxed word stores. If the
  /// claimed slot is still mid-write by a lapped writer, the record is
  /// dropped and counted instead.
  void Append(FlightRecord record);

  /// Total records ever appended (including any later overwritten).
  uint64_t total_appended() const {
    return head_.load(std::memory_order_relaxed);
  }
  /// Records dropped on writer collision (ring lapped within one write).
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  /// Anomaly dumps performed (TriggerDump with a configured path).
  uint64_t dumps_triggered() const {
    return dumps_.load(std::memory_order_relaxed);
  }

  /// Consistent copies of every live slot, oldest first (by seq_no). Slots
  /// being written during the scan are skipped.
  std::vector<FlightRecord> Snapshot() const;

  /// Serializes the current ring as JSON lines: a header object
  /// {"event":"flight_dump","reason":...,"records":N,"appended":...,
  /// "dropped":...} then one object per record.
  std::string ToJsonLines(std::string_view reason) const;

  /// Appends ToJsonLines(reason) to `path` (created if missing). Dumps are
  /// serialized against each other; appends never wait on a dump.
  Status Dump(const std::string& path, std::string_view reason) const;

  /// Sets the file anomaly dumps append to. Empty disables TriggerDump.
  void SetDumpPath(std::string path);
  std::string dump_path() const;

  /// Anomaly hook: dumps the ring to the configured path, tagged with
  /// `reason`. No-op (not an error) when no dump path is set, so callers
  /// can trigger unconditionally from error paths.
  void TriggerDump(std::string_view reason);

 private:
  static constexpr size_t kWords = sizeof(FlightRecord) / sizeof(uint64_t);

  struct Slot {
    // Even = stable, odd = write in progress; incremented twice per write.
    std::atomic<uint64_t> seq{0};
    std::array<std::atomic<uint64_t>, kWords> words{};
  };

  std::vector<Slot> slots_;
  std::atomic<uint64_t> head_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> dumps_{0};
  mutable std::mutex dump_mutex_;  // guards dump_path_ and dump file appends
  std::string dump_path_;
};

}  // namespace cascn::obs

#endif  // CASCN_OBS_FLIGHT_RECORDER_H_
