// Per-op autograd profiler and allocation accounting.
//
// The profiler answers two questions the trace spans cannot: which autograd
// op kind dominates a training step (spans cover whole layers, not the
// MatMul vs. SparseMatMul vs. gate-nonlinearity split inside them), and how
// much tensor memory is live / was peak-live while a computation graph is
// retained for backward.
//
//   CASCN_PROFILE=1 ./bench_micro_kernels      # per-op table on exit
//
// Recording sites:
//   * every `ag::` op constructor in tensor/variable.cc records forward
//     wall-clock, call count, estimated FLOPs, and output bytes;
//   * `Variable::Backward()` times each node's backward closure and
//     attributes it to the node's op kind;
//   * `Tensor` and `CsrMatrix` storage uses TrackingAllocator, so every
//     tensor-payload allocation/free updates live/peak byte accounting.
//
// Disabled (the default), every hook is one relaxed atomic load and a
// branch — mirroring CASCN_TRACE — so instrumented hot paths stay at
// production speed. Enable at runtime with `Profiler::Get().Enable()` or by
// setting the CASCN_PROFILE environment variable to anything but "0".
// Counters use relaxed atomics throughout: recording never takes a lock.
//
// Enabling mid-run skews memory accounting (frees of tensors allocated
// while disabled are not matched); call Reset() right after Enable() when
// measuring a bounded region.

#ifndef CASCN_OBS_PROFILER_H_
#define CASCN_OBS_PROFILER_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace cascn::obs {

class MetricsRegistry;

/// Autograd op kinds, one per `ag::` op constructor plus kLeaf for leaf
/// nodes (never recorded; the default for nodes built while disabled).
enum class OpKind : int {
  kLeaf = 0,
  kAdd,
  kSub,
  kMul,
  kAddRowBroadcast,
  kScalarMul,
  kAddScalar,
  kScaleByScalar,
  kMatMul,
  kSparseMatMul,
  kSigmoid,
  kTanh,
  kRelu,
  kSquare,
  kSoftplus,
  kSoftmaxRows,
  kSum,
  kMean,
  kSumRows,
  kMeanRows,
  kConcatCols,
  kConcatRows,
  kSliceRows,
  kGatherRows,
  kTranspose,
  kNumOpKinds,
};

constexpr int kNumOpKinds = static_cast<int>(OpKind::kNumOpKinds);

/// Stable snake_case name ("mat_mul", "sparse_mat_mul", ...).
std::string_view OpKindName(OpKind kind);

/// Point-in-time totals for one op kind.
struct OpStats {
  uint64_t forward_calls = 0;
  uint64_t forward_ns = 0;
  uint64_t forward_flops = 0;   // estimated from input dims
  uint64_t forward_bytes = 0;   // output bytes freshly written
  uint64_t backward_calls = 0;
  uint64_t backward_ns = 0;
  uint64_t backward_flops = 0;  // estimated from input dims
};

/// Process-global per-op and memory profiler. All methods are thread-safe.
class Profiler {
 public:
  static Profiler& Get();

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Zeroes every op stat and the memory accounting (live, peak, counts).
  void Reset();

  // ---- Op recording (called from tensor/variable.cc) ----------------------

  void RecordForward(OpKind kind, uint64_t ns, uint64_t flops,
                     uint64_t bytes);
  void RecordBackward(OpKind kind, uint64_t ns, uint64_t flops);

  // ---- Allocation accounting (called from TrackingAllocator) --------------

  void OnAlloc(size_t bytes) {
    if (!enabled()) return;
    const int64_t live =
        live_bytes_.fetch_add(static_cast<int64_t>(bytes),
                              std::memory_order_relaxed) +
        static_cast<int64_t>(bytes);
    alloc_count_.fetch_add(1, std::memory_order_relaxed);
    int64_t peak = peak_live_bytes_.load(std::memory_order_relaxed);
    while (live > peak && !peak_live_bytes_.compare_exchange_weak(
                              peak, live, std::memory_order_relaxed)) {
    }
  }

  void OnFree(size_t bytes) {
    if (!enabled()) return;
    live_bytes_.fetch_sub(static_cast<int64_t>(bytes),
                          std::memory_order_relaxed);
    free_count_.fetch_add(1, std::memory_order_relaxed);
  }

  int64_t live_bytes() const {
    return live_bytes_.load(std::memory_order_relaxed);
  }
  int64_t peak_live_bytes() const {
    return peak_live_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t alloc_count() const {
    return alloc_count_.load(std::memory_order_relaxed);
  }
  uint64_t free_count() const {
    return free_count_.load(std::memory_order_relaxed);
  }

  // ---- Reporting ----------------------------------------------------------

  struct Snapshot {
    std::array<OpStats, kNumOpKinds> ops{};
    int64_t live_bytes = 0;
    int64_t peak_live_bytes = 0;
    uint64_t alloc_count = 0;
    uint64_t free_count = 0;

    /// Sum of forward_ns + backward_ns over every op kind.
    uint64_t TotalNs() const;
    /// Per-op breakdown + memory as one JSON object, ops with calls only,
    /// sorted by total time descending.
    std::string ToJson() const;
    /// Human-readable per-op table (time, calls, est. GFLOP, bytes) plus a
    /// memory summary, sorted by total time descending.
    std::string ToTable() const;
  };

  Snapshot TakeSnapshot() const;

  /// Bridges the snapshot into `registry` as gauges: per-op
  /// `profile_op_<name>_{forward_ns,backward_ns,calls}` (ops with calls
  /// only) plus `profile_{live,peak_live}_bytes` and
  /// `profile_{alloc,free}_total`.
  void ExportToRegistry(MetricsRegistry& registry) const;

 private:
  struct AtomicOpStats {
    std::atomic<uint64_t> forward_calls{0};
    std::atomic<uint64_t> forward_ns{0};
    std::atomic<uint64_t> forward_flops{0};
    std::atomic<uint64_t> forward_bytes{0};
    std::atomic<uint64_t> backward_calls{0};
    std::atomic<uint64_t> backward_ns{0};
    std::atomic<uint64_t> backward_flops{0};
  };

  Profiler();

  std::atomic<bool> enabled_{false};
  std::array<AtomicOpStats, kNumOpKinds> ops_{};
  std::atomic<int64_t> live_bytes_{0};
  std::atomic<int64_t> peak_live_bytes_{0};
  std::atomic<uint64_t> alloc_count_{0};
  std::atomic<uint64_t> free_count_{0};
};

/// std::allocator wrapper that reports payload bytes to the Profiler.
/// Stateless; all instances are interchangeable, so container copy/move
/// semantics are unchanged.
template <typename T>
struct TrackingAllocator {
  using value_type = T;

  TrackingAllocator() noexcept = default;
  template <typename U>
  TrackingAllocator(const TrackingAllocator<U>&) noexcept {}  // NOLINT

  T* allocate(size_t n) {
    Profiler::Get().OnAlloc(n * sizeof(T));
    return std::allocator<T>().allocate(n);
  }
  void deallocate(T* p, size_t n) noexcept {
    Profiler::Get().OnFree(n * sizeof(T));
    std::allocator<T>().deallocate(p, n);
  }
};

template <typename T, typename U>
bool operator==(const TrackingAllocator<T>&, const TrackingAllocator<U>&) {
  return true;
}
template <typename T, typename U>
bool operator!=(const TrackingAllocator<T>&, const TrackingAllocator<U>&) {
  return false;
}

/// Vector whose payload is counted in the profiler's memory accounting.
template <typename T>
using TrackedVector = std::vector<T, TrackingAllocator<T>>;

}  // namespace cascn::obs

#endif  // CASCN_OBS_PROFILER_H_
