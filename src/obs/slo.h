// Per-tenant SLI tracking with multi-window error-budget burn rates.
//
// The serving tier promises each tenant an availability/latency SLO (e.g.
// 99.9% of requests succeed within 50 ms). The SloTracker turns the stream
// of per-request outcomes into the two numbers an operator pages on:
//
//   burn rate = observed error rate / error budget (1 - availability target)
//
// computed over a FAST window (default 60 s — catches a sudden outage) and
// a SLOW window (default 30 min — filters one-off blips). A tenant is
// "burning" only when BOTH windows exceed their thresholds: the fast window
// must confirm the problem is happening *now*, the slow window that it has
// been going on long enough to matter. This is the standard multi-window
// multi-burn-rate alerting shape (SRE workbook ch. 5), applied here to
// degrade ClusterHealth before tenants experience hard failure.
//
// Time is always injected: every entry point takes an explicit
// steady_clock::time_point, so tests can replay hours of traffic in
// microseconds and assert exact burn transitions. Internally each tenant
// keeps a ring of per-second buckets sized to the slow window; memory is
// O(tenants * slow_window_seconds) and recording is O(1).

#ifndef CASCN_OBS_SLO_H_
#define CASCN_OBS_SLO_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace cascn::obs {

class MetricsRegistry;

struct SloOptions {
  /// Fraction of requests that must be "good" (ok status AND within the
  /// latency threshold). The error budget is 1 - availability_target.
  double availability_target = 0.999;
  /// A successful request slower than this still violates the SLI. 0
  /// disables the latency component (availability only).
  uint64_t latency_slo_us = 0;
  int fast_window_seconds = 60;
  int slow_window_seconds = 1800;
  /// Burn-rate thresholds; both windows must exceed theirs to flag a
  /// tenant. The defaults correspond to "exhausting a 30-day budget in
  /// ~2 days" style paging: fast confirms immediacy, slow persistence.
  double fast_burn_threshold = 14.0;
  double slow_burn_threshold = 1.0;
};

/// One tenant's SLI snapshot at a point in time.
struct TenantSli {
  std::string tenant;
  uint64_t fast_total = 0;
  uint64_t fast_good = 0;
  uint64_t slow_total = 0;
  uint64_t slow_good = 0;
  double fast_availability = 1.0;
  double slow_availability = 1.0;
  double fast_burn = 0.0;
  double slow_burn = 0.0;
  /// True when both windows' burn rates exceed their thresholds.
  bool burning = false;
};

/// Rolling-window per-tenant SLI/burn-rate tracker. Thread-safe.
class SloTracker {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;

  explicit SloTracker(SloOptions options = {});

  const SloOptions& options() const { return options_; }

  /// Records one terminal request outcome for `tenant` at time `now`.
  /// `ok` is whether the request succeeded; a success slower than
  /// latency_slo_us (when set) still counts against the SLI.
  void RecordRequest(std::string_view tenant, TimePoint now, bool ok,
                     uint64_t latency_us);

  /// Current SLIs for every tenant ever recorded, sorted by tenant name.
  std::vector<TenantSli> Snapshot(TimePoint now) const;

  /// True when any tenant is burning at `now` (see TenantSli::burning).
  bool AnyTenantBurning(TimePoint now) const;

  /// Exports per-tenant gauges: slo_fast_burn{tenant=...},
  /// slo_slow_burn{tenant=...}, slo_fast_availability{tenant=...},
  /// slo_slow_availability{tenant=...}, slo_burning{tenant=...} (0/1).
  /// Tenant labels are escaped via EscapeLabelValue.
  void ExportToRegistry(MetricsRegistry& registry, TimePoint now) const;

 private:
  struct Bucket {
    int64_t second = -1;  // absolute second this bucket currently holds
    uint64_t total = 0;
    uint64_t good = 0;
  };
  struct TenantState {
    std::vector<Bucket> ring;  // slot = second % slow_window_seconds
  };
  struct WindowSums {
    uint64_t total = 0;
    uint64_t good = 0;
  };

  static int64_t ToSecond(TimePoint t) {
    return std::chrono::duration_cast<std::chrono::seconds>(
               t.time_since_epoch())
        .count();
  }

  WindowSums SumWindow(const TenantState& state, int64_t now_second,
                       int window_seconds) const;
  TenantSli MakeSli(const std::string& tenant, const TenantState& state,
                    int64_t now_second) const;

  const SloOptions options_;
  mutable std::mutex mutex_;
  std::map<std::string, TenantState, std::less<>> tenants_;
};

}  // namespace cascn::obs

#endif  // CASCN_OBS_SLO_H_
