// Low-overhead scoped trace spans with Chrome trace-event export.
//
//   void ChebConv::Forward(...) {
//     CASCN_TRACE_SPAN("cheb_conv");
//     ...
//   }
//
// Spans record into per-thread ring buffers owned by the process-global
// Tracer; `Tracer::Get().WriteChromeTrace(path)` serializes everything
// collected so far as Chrome trace-event JSON, loadable in chrome://tracing
// or https://ui.perfetto.dev. Tracing is disabled by default: a disabled
// span costs one relaxed atomic load and records nothing, so instrumented
// hot paths (graph convolutions, LSTM steps, serve requests) stay cheap in
// production. Enable at runtime with `Tracer::Get().Enable()` or by setting
// the CASCN_TRACE environment variable to anything but "0" before startup.
//
// Request-scoped spans: a span can carry a 64-bit trace id (see
// obs/request_context.h) plus a flow role. Spans with a flow role are
// additionally serialized as Chrome flow events ("s" start, "t" step, "f"
// finish) keyed on the trace id, which chrome://tracing renders as arrows
// linking one request's spans ACROSS THREADS — the enqueue on a client
// thread, the queue wait and execution on a worker, a retry on a different
// shard. Select one request in the UI and its whole path lights up.
//
// Overflow accounting: each per-thread ring is bounded; when it wraps, the
// overwritten spans are counted (never silently lost). The total is
// exported as the `trace_spans_dropped` counter in the global
// MetricsRegistry and embedded in the trace JSON metadata, so a truncated
// trace is self-describing.
//
// Span names must be string literals (or otherwise outlive the tracer):
// recording stores the pointer, never a copy, to keep the hot path
// allocation-free.

#ifndef CASCN_OBS_TRACE_H_
#define CASCN_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics_registry.h"

namespace cascn::obs {

/// How a span participates in its request's cross-thread flow chain.
/// Serialized as Chrome flow events alongside the span's "X" event.
enum class SpanFlow : uint8_t {
  kNone = 0,  // plain span; no flow event
  kOut = 1,   // hands the request off (emits "s" — flow starts here)
  kStep = 2,  // intermediate hop (emits "t" — flow passes through)
  kIn = 3,    // receives the request (emits "f" — flow ends here)
};

/// One completed span, times in nanoseconds since the tracer's epoch.
struct TraceEvent {
  const char* name = nullptr;
  uint64_t start_ns = 0;
  uint64_t duration_ns = 0;
  uint64_t trace_id = 0;  // 0 = not request-scoped
  SpanFlow flow = SpanFlow::kNone;
};

/// A span that is open RIGHT NOW on some thread (constructed but not yet
/// destroyed). The live answer to "what is this worker doing" — a wedged
/// worker shows up as one of these with a large age. Only populated while
/// span sampling is enabled (see Tracer::EnableSampling).
struct OpenSpanInfo {
  const char* name = nullptr;
  int tid = 0;            // tracer thread id, matches the Chrome trace tid
  uint64_t trace_id = 0;  // 0 = not request-scoped
  uint64_t age_ns = 0;    // how long the span has been open
};

/// Aggregate over completed spans of one name, collected while sampling is
/// enabled. Durations in microseconds.
struct SpanStats {
  std::string name;
  uint64_t count = 0;
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  uint64_t max_us = 0;
};

/// Process-global span collector. All methods are thread-safe.
class Tracer {
 public:
  /// Events retained per thread; older events are overwritten (newest-wins
  /// ring), so a runaway trace degrades to a sliding window instead of
  /// unbounded memory.
  static constexpr size_t kRingCapacity = size_t{1} << 16;

  /// Distinct span names tracked by the sampling aggregates; the overflow
  /// beyond the cap is folded into a single "_other" entry so a name
  /// explosion cannot grow the table without bound.
  static constexpr size_t kMaxSampledNames = 256;

  static Tracer& Get();

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Span sampling is the /tracez + watchdog feed: per-name count/p50/p95
  /// aggregates over completed spans plus the table of currently-open
  /// spans. Independent of Enable() (the Chrome-trace ring): introspection
  /// servers and watchdogs turn sampling on without paying for full trace
  /// retention. Off by default; while off a span costs one extra relaxed
  /// load and records nothing.
  void EnableSampling() { sampling_.store(true, std::memory_order_relaxed); }
  void DisableSampling() {
    sampling_.store(false, std::memory_order_relaxed);
  }
  bool sampling() const {
    return sampling_.load(std::memory_order_relaxed);
  }

  /// Spans open right now across all threads, oldest first. Empty unless
  /// sampling is enabled.
  std::vector<OpenSpanInfo> OpenSpans() const;

  /// Per-name aggregates over completed spans sampled so far, sorted by
  /// name. Cleared by Clear().
  std::vector<SpanStats> SpanStatsSnapshot() const;

  /// JSON array of OpenSpans() entries: [{"name", "tid", "trace_id",
  /// "age_us"}, ...]. Reused by /tracez and the watchdog stall dump.
  std::string OpenSpansJson() const;

  /// Full /tracez payload: {"sampling", "spans_dropped", "span_stats",
  /// "open_spans"}.
  std::string TracezJson() const;

  /// Drops every recorded event (thread buffers stay registered) and
  /// resets the dropped-span count.
  void Clear();

  /// Total events currently retained across all threads.
  size_t event_count() const;

  /// Spans overwritten by ring wrap since the last Clear(). Also exported
  /// as the `trace_spans_dropped` counter in MetricsRegistry::Get() and in
  /// the trace JSON metadata.
  uint64_t dropped_count() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Records a completed span with explicit endpoints. Used for durations
  /// whose begin and end happen on different threads (e.g. queue wait:
  /// enqueue on a client thread, dequeue on a worker); the event lands in
  /// the calling thread's buffer. Also feeds the sampling aggregates when
  /// sampling is on. No-op while both tracing and sampling are disabled.
  void RecordSpan(const char* name,
                  std::chrono::steady_clock::time_point start,
                  std::chrono::steady_clock::time_point end) {
    RecordSpan(name, start, end, /*trace_id=*/0, SpanFlow::kNone);
  }

  /// Request-scoped variant: the span carries `trace_id` and, when `flow`
  /// is not kNone, is serialized with the matching Chrome flow event so
  /// cross-thread hops of one request link up in the viewer.
  void RecordSpan(const char* name,
                  std::chrono::steady_clock::time_point start,
                  std::chrono::steady_clock::time_point end,
                  uint64_t trace_id, SpanFlow flow);

  /// Chrome trace-event JSON ("traceEvents" array of complete "X" events,
  /// plus "s"/"t"/"f" flow events for request-scoped spans and a
  /// "spans_dropped" metadata field).
  std::string ToChromeTraceJson() const;

  /// Writes ToChromeTraceJson() to `path`.
  Status WriteChromeTrace(const std::string& path) const;

  std::chrono::steady_clock::time_point epoch() const { return epoch_; }

 private:
  friend class ScopedSpan;

  struct OpenSpan {
    const char* name = nullptr;
    std::chrono::steady_clock::time_point start;
    uint64_t trace_id = 0;
  };

  struct ThreadBuffer {
    // Guards the ring. Uncontended except while a snapshot is being taken:
    // each thread writes only its own buffer.
    std::mutex mutex;
    std::vector<TraceEvent> ring;
    size_t next = 0;      // insertion point once the ring is full
    bool wrapped = false;
    int tid = 0;          // stable per-thread id for the trace output
    // Spans currently open on this thread (sampling only). RAII scoping
    // makes pushes/pops LIFO per thread; removal still searches from the
    // back so a Clear()-or-toggle race degrades to a no-op, never a
    // mismatched pop.
    std::vector<OpenSpan> open;
  };

  Tracer();

  /// The calling thread's buffer, registered on first use.
  ThreadBuffer& LocalBuffer();
  void Record(const TraceEvent& event);

  /// Sampling hooks used by ScopedSpan: push/remove the open-span entry on
  /// the calling thread's buffer.
  void PushOpenSpan(const char* name,
                    std::chrono::steady_clock::time_point start,
                    uint64_t trace_id);
  void PopOpenSpan(const char* name,
                   std::chrono::steady_clock::time_point start,
                   uint64_t trace_id);
  /// Folds a completed span into the per-name aggregates.
  void RecordSample(const char* name, uint64_t duration_ns);

  // Each thread holds a shared_ptr so its buffer outlives thread exit (the
  // registry keeps the other reference; the serializer may still read it).
  static thread_local std::shared_ptr<ThreadBuffer> tls_buffer_;

  const std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> enabled_{false};
  std::atomic<bool> sampling_{false};
  std::atomic<int> next_tid_{1};
  std::atomic<uint64_t> dropped_{0};
  mutable std::mutex buffers_mutex_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  // Per-name duration histograms (microseconds), sampling only. Bounded by
  // kMaxSampledNames; guarded by samples_mutex_.
  mutable std::mutex samples_mutex_;
  std::map<std::string, std::unique_ptr<Histogram>> samples_;
};

/// RAII span: measures construction-to-destruction on the current thread.
/// Prefer the CASCN_TRACE_SPAN / CASCN_TRACE_SPAN_ID macros.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name)
      : ScopedSpan(name, /*trace_id=*/0, SpanFlow::kNone) {}
  ScopedSpan(const char* name, uint64_t trace_id,
             SpanFlow flow = SpanFlow::kNone)
      : name_(name),
        trace_id_(trace_id),
        flow_(flow),
        active_(Tracer::Get().enabled()),
        sampled_(Tracer::Get().sampling()) {
    if (active_ || sampled_) start_ = std::chrono::steady_clock::now();
    if (sampled_) Tracer::Get().PushOpenSpan(name_, start_, trace_id_);
  }
  ~ScopedSpan() {
    if (!active_ && !sampled_) return;
    // RecordSpan gates on the CURRENT tracer state, so a span that straddles
    // an Enable()/EnableSampling() toggle records at most what both ends
    // agreed to; the open-span entry is always removed if it was pushed.
    Tracer::Get().RecordSpan(name_, start_, std::chrono::steady_clock::now(),
                             trace_id_, flow_);
    if (sampled_) Tracer::Get().PopOpenSpan(name_, start_, trace_id_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  uint64_t trace_id_;
  SpanFlow flow_;
  bool active_;
  bool sampled_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace cascn::obs

#define CASCN_OBS_CONCAT_INNER_(a, b) a##b
#define CASCN_OBS_CONCAT_(a, b) CASCN_OBS_CONCAT_INNER_(a, b)

/// Traces the enclosing scope under `name` (must be a string literal).
#define CASCN_TRACE_SPAN(name)    \
  ::cascn::obs::ScopedSpan CASCN_OBS_CONCAT_(cascn_trace_span_, \
                                             __LINE__)(name)

/// Request-scoped variant: the span carries `trace_id` and a flow role.
#define CASCN_TRACE_SPAN_ID(name, trace_id, flow)                   \
  ::cascn::obs::ScopedSpan CASCN_OBS_CONCAT_(cascn_trace_span_,     \
                                             __LINE__)(name, trace_id, flow)

#endif  // CASCN_OBS_TRACE_H_
