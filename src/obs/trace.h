// Low-overhead scoped trace spans with Chrome trace-event export.
//
//   void ChebConv::Forward(...) {
//     CASCN_TRACE_SPAN("cheb_conv");
//     ...
//   }
//
// Spans record into per-thread ring buffers owned by the process-global
// Tracer; `Tracer::Get().WriteChromeTrace(path)` serializes everything
// collected so far as Chrome trace-event JSON, loadable in chrome://tracing
// or https://ui.perfetto.dev. Tracing is disabled by default: a disabled
// span costs one relaxed atomic load and records nothing, so instrumented
// hot paths (graph convolutions, LSTM steps, serve requests) stay cheap in
// production. Enable at runtime with `Tracer::Get().Enable()` or by setting
// the CASCN_TRACE environment variable to anything but "0" before startup.
//
// Request-scoped spans: a span can carry a 64-bit trace id (see
// obs/request_context.h) plus a flow role. Spans with a flow role are
// additionally serialized as Chrome flow events ("s" start, "t" step, "f"
// finish) keyed on the trace id, which chrome://tracing renders as arrows
// linking one request's spans ACROSS THREADS — the enqueue on a client
// thread, the queue wait and execution on a worker, a retry on a different
// shard. Select one request in the UI and its whole path lights up.
//
// Overflow accounting: each per-thread ring is bounded; when it wraps, the
// overwritten spans are counted (never silently lost). The total is
// exported as the `trace_spans_dropped` counter in the global
// MetricsRegistry and embedded in the trace JSON metadata, so a truncated
// trace is self-describing.
//
// Span names must be string literals (or otherwise outlive the tracer):
// recording stores the pointer, never a copy, to keep the hot path
// allocation-free.

#ifndef CASCN_OBS_TRACE_H_
#define CASCN_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace cascn::obs {

/// How a span participates in its request's cross-thread flow chain.
/// Serialized as Chrome flow events alongside the span's "X" event.
enum class SpanFlow : uint8_t {
  kNone = 0,  // plain span; no flow event
  kOut = 1,   // hands the request off (emits "s" — flow starts here)
  kStep = 2,  // intermediate hop (emits "t" — flow passes through)
  kIn = 3,    // receives the request (emits "f" — flow ends here)
};

/// One completed span, times in nanoseconds since the tracer's epoch.
struct TraceEvent {
  const char* name = nullptr;
  uint64_t start_ns = 0;
  uint64_t duration_ns = 0;
  uint64_t trace_id = 0;  // 0 = not request-scoped
  SpanFlow flow = SpanFlow::kNone;
};

/// Process-global span collector. All methods are thread-safe.
class Tracer {
 public:
  /// Events retained per thread; older events are overwritten (newest-wins
  /// ring), so a runaway trace degrades to a sliding window instead of
  /// unbounded memory.
  static constexpr size_t kRingCapacity = size_t{1} << 16;

  static Tracer& Get();

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Drops every recorded event (thread buffers stay registered) and
  /// resets the dropped-span count.
  void Clear();

  /// Total events currently retained across all threads.
  size_t event_count() const;

  /// Spans overwritten by ring wrap since the last Clear(). Also exported
  /// as the `trace_spans_dropped` counter in MetricsRegistry::Get() and in
  /// the trace JSON metadata.
  uint64_t dropped_count() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Records a completed span with explicit endpoints. Used for durations
  /// whose begin and end happen on different threads (e.g. queue wait:
  /// enqueue on a client thread, dequeue on a worker); the event lands in
  /// the calling thread's buffer. No-op while disabled.
  void RecordSpan(const char* name,
                  std::chrono::steady_clock::time_point start,
                  std::chrono::steady_clock::time_point end) {
    RecordSpan(name, start, end, /*trace_id=*/0, SpanFlow::kNone);
  }

  /// Request-scoped variant: the span carries `trace_id` and, when `flow`
  /// is not kNone, is serialized with the matching Chrome flow event so
  /// cross-thread hops of one request link up in the viewer.
  void RecordSpan(const char* name,
                  std::chrono::steady_clock::time_point start,
                  std::chrono::steady_clock::time_point end,
                  uint64_t trace_id, SpanFlow flow);

  /// Chrome trace-event JSON ("traceEvents" array of complete "X" events,
  /// plus "s"/"t"/"f" flow events for request-scoped spans and a
  /// "spans_dropped" metadata field).
  std::string ToChromeTraceJson() const;

  /// Writes ToChromeTraceJson() to `path`.
  Status WriteChromeTrace(const std::string& path) const;

  std::chrono::steady_clock::time_point epoch() const { return epoch_; }

 private:
  friend class ScopedSpan;

  struct ThreadBuffer {
    // Guards the ring. Uncontended except while a snapshot is being taken:
    // each thread writes only its own buffer.
    std::mutex mutex;
    std::vector<TraceEvent> ring;
    size_t next = 0;      // insertion point once the ring is full
    bool wrapped = false;
    int tid = 0;          // stable per-thread id for the trace output
  };

  Tracer();

  /// The calling thread's buffer, registered on first use.
  ThreadBuffer& LocalBuffer();
  void Record(const TraceEvent& event);

  // Each thread holds a shared_ptr so its buffer outlives thread exit (the
  // registry keeps the other reference; the serializer may still read it).
  static thread_local std::shared_ptr<ThreadBuffer> tls_buffer_;

  const std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> enabled_{false};
  std::atomic<int> next_tid_{1};
  std::atomic<uint64_t> dropped_{0};
  mutable std::mutex buffers_mutex_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
};

/// RAII span: measures construction-to-destruction on the current thread.
/// Prefer the CASCN_TRACE_SPAN / CASCN_TRACE_SPAN_ID macros.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name)
      : ScopedSpan(name, /*trace_id=*/0, SpanFlow::kNone) {}
  ScopedSpan(const char* name, uint64_t trace_id,
             SpanFlow flow = SpanFlow::kNone)
      : name_(name),
        trace_id_(trace_id),
        flow_(flow),
        active_(Tracer::Get().enabled()) {
    if (active_) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedSpan() {
    if (active_)
      Tracer::Get().RecordSpan(name_, start_,
                               std::chrono::steady_clock::now(), trace_id_,
                               flow_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  uint64_t trace_id_;
  SpanFlow flow_;
  bool active_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace cascn::obs

#define CASCN_OBS_CONCAT_INNER_(a, b) a##b
#define CASCN_OBS_CONCAT_(a, b) CASCN_OBS_CONCAT_INNER_(a, b)

/// Traces the enclosing scope under `name` (must be a string literal).
#define CASCN_TRACE_SPAN(name)    \
  ::cascn::obs::ScopedSpan CASCN_OBS_CONCAT_(cascn_trace_span_, \
                                             __LINE__)(name)

/// Request-scoped variant: the span carries `trace_id` and a flow role.
#define CASCN_TRACE_SPAN_ID(name, trace_id, flow)                   \
  ::cascn::obs::ScopedSpan CASCN_OBS_CONCAT_(cascn_trace_span_,     \
                                             __LINE__)(name, trace_id, flow)

#endif  // CASCN_OBS_TRACE_H_
