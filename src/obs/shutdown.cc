#include "obs/shutdown.h"

#include "obs/profiler.h"
#include "obs/trace.h"

namespace cascn::obs {

Status ShutdownDump(const ShutdownDumpOptions& options) {
  Status first_error = Status::OK();
  const auto keep = [&first_error](Status status) {
    if (first_error.ok() && !status.ok()) first_error = std::move(status);
  };

  for (TelemetrySink* sink : options.telemetry)
    if (sink != nullptr) sink->Flush();

  MetricsRegistry& registry =
      options.registry != nullptr ? *options.registry : MetricsRegistry::Get();
  Profiler& profiler = Profiler::Get();
  if (profiler.enabled()) {
    profiler.ExportToRegistry(registry);
    if (options.profile_stream != nullptr)
      std::fprintf(options.profile_stream, "%s",
                   profiler.TakeSnapshot().ToTable().c_str());
  }

  if (!options.metrics_path.empty()) {
    std::FILE* out = std::fopen(options.metrics_path.c_str(), "w");
    if (out == nullptr) {
      keep(Status::IoError("cannot open metrics output file: " +
                           options.metrics_path));
    } else {
      const std::string json = options.metrics_json_override.empty()
                                   ? registry.JsonSnapshot()
                                   : options.metrics_json_override;
      std::fprintf(out, "%s\n", json.c_str());
      std::fclose(out);
    }
  }

  if (!options.trace_path.empty())
    keep(Tracer::Get().WriteChromeTrace(options.trace_path));

  return first_error;
}

}  // namespace cascn::obs
