// BenchReport: the machine-readable benchmark report every bench binary
// emits as BENCH_<name>.json, and the schema the CI bench-guard job diffs
// against its checked-in baseline.
//
// Schema (version 1, documented in EXPERIMENTS.md):
//
//   {
//     "schema_version": 1,
//     "name": "micro_kernels",            // report/binary name
//     "git_sha": "abc123...",             // baked in at configure time
//     "created_unix": 1733500000,
//     "config": {...},                    // flat knobs: scale, flags, host
//     "wall_clock_seconds": 12.34,
//     "histograms": {"latency_us": {count, mean, p50, p90, p95, p99, max}},
//     "results": [{...}, ...],            // one flat object per measurement
//     "profile": {"ops": [...], "memory": {...}},  // per-op breakdown
//     "metrics": {...}                    // MetricsRegistry::JsonSnapshot
//   }
//
//   obs::BenchReport report("micro_kernels");
//   report.AddConfig("scale", 1.0);
//   report.AddResult(obs::JsonObjectBuilder()
//                        .Add("benchmark", "BM_DenseMatMul/64")
//                        .Add("real_ns_per_iter", 123.4)
//                        .Build());
//   report.SetWallClockSeconds(12.3).CaptureProfile().WriteDefault();

#ifndef CASCN_OBS_BENCH_REPORT_H_
#define CASCN_OBS_BENCH_REPORT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "obs/metrics_registry.h"

namespace cascn::obs {

class BenchReport {
 public:
  explicit BenchReport(std::string name);

  /// Flat configuration knobs, emitted in insertion order.
  BenchReport& AddConfig(std::string_view key, std::string_view value);
  BenchReport& AddConfig(std::string_view key, const char* value) {
    return AddConfig(key, std::string_view(value));
  }
  BenchReport& AddConfig(std::string_view key, double value);
  BenchReport& AddConfig(std::string_view key, int64_t value);
  BenchReport& AddConfig(std::string_view key, int value) {
    return AddConfig(key, static_cast<int64_t>(value));
  }
  BenchReport& AddConfig(std::string_view key, uint64_t value) {
    return AddConfig(key, static_cast<int64_t>(value));
  }

  BenchReport& SetWallClockSeconds(double seconds);

  /// Latency percentiles (p50/p90/p95/p99 interpolated from the log2
  /// buckets) plus count/mean/max under `histograms.<name>`.
  BenchReport& AddHistogram(std::string_view name,
                            const Histogram::Snapshot& snapshot);

  /// Appends one measurement to `results`. `json_object` must be a complete
  /// JSON object (use JsonObjectBuilder).
  BenchReport& AddResult(std::string json_object);

  /// Embeds the global Profiler snapshot (per-op breakdown + memory).
  BenchReport& CaptureProfile();

  /// Embeds `registry`'s JSON snapshot under `metrics`.
  BenchReport& CaptureMetrics(const MetricsRegistry& registry);

  const std::string& name() const { return name_; }

  std::string ToJson() const;
  Status WriteFile(const std::string& path) const;
  /// Writes to DefaultPath(name()).
  Status WriteDefault() const;

  /// "BENCH_<name>.json", under $CASCN_BENCH_REPORT_DIR when set, else the
  /// working directory.
  static std::string DefaultPath(const std::string& name);

  /// Git revision baked in at configure time; falls back to the
  /// CASCN_GIT_SHA environment variable, then "unknown".
  static std::string GitSha();

 private:
  std::string name_;
  int64_t created_unix_ = 0;
  double wall_clock_seconds_ = 0.0;
  std::string config_body_;      // "k": v, ... (insertion-ordered)
  std::string histograms_body_;  // "name": {...}, ...
  std::vector<std::string> results_;
  std::string profile_json_;     // empty until CaptureProfile()
  std::string metrics_json_;     // empty until CaptureMetrics()
};

}  // namespace cascn::obs

#endif  // CASCN_OBS_BENCH_REPORT_H_
