// Named counters, gauges, and log2-bucketed histograms with text and JSON
// exposition.
//
//   obs::Counter& evictions =
//       obs::MetricsRegistry::Get().GetCounter("sessions_evicted_total");
//   evictions.Increment();
//
// Primitives are lock-free (relaxed atomics) so recording from hot paths
// never contends; only name lookup takes the registry mutex, so callers on
// hot paths should resolve a metric once and keep the reference — returned
// references stay valid for the registry's lifetime.
//
// `MetricsRegistry::Get()` is the process-global instance. Components that
// need isolated numbers (e.g. one PredictionService per benchmark run) can
// own a local MetricsRegistry instead; the exposition formats are the same.

#ifndef CASCN_OBS_METRICS_REGISTRY_H_
#define CASCN_OBS_METRICS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace cascn::obs {

/// Escapes a caller-supplied string for use inside a label value, e.g.
/// `"cluster_tenant_admitted{tenant=\"" + EscapeLabelValue(tenant) + "\"}"`.
/// Backslash, double quote, and newline become \\, \", \n (the Prometheus
/// label escape set); other control characters are hex-escaped as \xNN.
/// Embedded NUL bytes are dropped — metric names are handled as C-style
/// strings in enough places that a NUL would silently truncate.
std::string EscapeLabelValue(std::string_view value);

/// Monotonically increasing event count.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time value (queue depth, learning rate, ...).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    double prev = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(prev, prev + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Histogram of non-negative integer samples in log2 buckets: bucket i
/// counts values in [2^i, 2^{i+1}) (bucket 0 also absorbs 0, the last
/// bucket absorbs everything at or above its lower edge). Generalizes the
/// serve latency histogram; with the default 32 buckets the top bucket
/// starts at 2^31, enough for hour-scale microsecond latencies.
class Histogram {
 public:
  static constexpr int kDefaultBuckets = 32;

  explicit Histogram(int num_buckets = kDefaultBuckets);

  void Record(uint64_t value);
  int num_buckets() const { return num_buckets_; }

  struct Snapshot {
    std::vector<uint64_t> buckets;
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t max = 0;
    double mean = 0.0;

    /// Upper edge of the bucket containing quantile `q` in [0, 1]; 0 when
    /// the histogram is empty. Coarse but monotone; prefer Percentile().
    double PercentileUpperBound(double q) const;
    /// Quantile estimate for `q` in [0, 1]: linearly interpolated within
    /// the containing log2 bucket, clamped to the observed max. 0 when the
    /// histogram is empty.
    double Percentile(double q) const;
    /// One JSON object (count/mean/p50/p90/p95/p99/max), interpolated
    /// percentiles.
    std::string ToJson() const;
  };

  Snapshot TakeSnapshot() const;

  /// Adds another histogram's snapshot into this one, bucket by bucket
  /// (counts, sum, and max). Extra source buckets beyond this histogram's
  /// count fold into the last bucket. Used to merge per-component
  /// histograms into one scrape-local registry.
  void MergeFrom(const Snapshot& snapshot);

 private:
  const int num_buckets_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

/// Thread-safe name -> metric table. Metrics are created on first lookup
/// and live as long as the registry.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-global instance.
  static MetricsRegistry& Get();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  /// `num_buckets` only applies on first creation; later lookups of the
  /// same name return the existing histogram unchanged.
  Histogram& GetHistogram(const std::string& name,
                          int num_buckets = Histogram::kDefaultBuckets);

  /// Copies every metric's CURRENT value into `dest` (creating metrics as
  /// needed): counter values are added, gauges overwritten, histograms
  /// merged bucket-by-bucket. The debug server uses this to combine the
  /// process-global registry with component exporters into one
  /// scrape-local registry per /metricsz request. `dest` must be a
  /// different registry.
  void ExportTo(MetricsRegistry& dest) const;

  /// Multi-line `name = value` report, one metric per line, with
  /// OpenMetrics-style `# HELP` / `# TYPE` comment lines before each
  /// metric family (the name minus any `{label="..."}` sample suffix) so
  /// the output is scrapeable.
  std::string TextSnapshot() const;
  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {...}}}.
  std::string JsonSnapshot() const;

 private:
  mutable std::mutex mutex_;
  // node-based maps: values never move, so handed-out references are stable.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace cascn::obs

#endif  // CASCN_OBS_METRICS_REGISTRY_H_
