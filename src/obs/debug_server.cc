#include "obs/debug_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "common/logging.h"
#include "common/string_util.h"
#include "obs/trace.h"

#ifndef CASCN_GIT_SHA
#define CASCN_GIT_SHA "unknown"
#endif

namespace cascn::obs {

namespace {

std::atomic<uint64_t> g_servers_started{0};

constexpr size_t kMaxRequestBytes = 16 * 1024;

const char* StatusReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    default: return "Unknown";
  }
}

// Splits "path?a=1&b=2" into path + query map. No %-decoding: debug
// endpoints use plain ASCII keys/values (format=json and the like).
void ParseTarget(std::string_view target, HttpRequest* request) {
  const size_t qmark = target.find('?');
  request->path = std::string(target.substr(0, qmark));
  if (qmark == std::string_view::npos) return;
  for (std::string_view pair :
       Split(target.substr(qmark + 1), '&')) {
    if (pair.empty()) continue;
    const size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {
      request->query[std::string(pair)] = "";
    } else {
      request->query[std::string(pair.substr(0, eq))] =
          std::string(pair.substr(eq + 1));
    }
  }
}

void SetIoTimeouts(int fd) {
  struct timeval tv;
  tv.tv_sec = 5;
  tv.tv_usec = 0;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

bool WriteAll(int fd, std::string_view data) {
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + written, data.size() - written, MSG_NOSIGNAL);
    if (n <= 0) return false;
    written += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

DebugServer::DebugServer(DebugServerOptions options)
    : options_(std::move(options)),
      start_time_(std::chrono::steady_clock::now()) {}

Result<std::unique_ptr<DebugServer>> DebugServer::Start(
    DebugServerOptions options) {
  std::unique_ptr<DebugServer> server(new DebugServer(std::move(options)));
  Status status = server->Listen();
  if (!status.ok()) return status;
  {
    std::lock_guard<std::mutex> lock(server->lifecycle_mutex_);
    server->running_ = true;
    server->thread_ = std::thread([s = server.get()] { s->Loop(); });
  }
  g_servers_started.fetch_add(1, std::memory_order_relaxed);
  // /tracez serves the sampling aggregates and the open-span table; enable
  // the feed the moment introspection is asked for.
  Tracer::Get().EnableSampling();
  server->AddEndpoint("/", [s = server.get()](const HttpRequest& r) {
    return s->Index(r);
  });
  server->AddEndpoint("/statusz", [s = server.get()](const HttpRequest& r) {
    return s->Statusz(r);
  });
  server->AddEndpoint("/metricsz", [s = server.get()](const HttpRequest& r) {
    return s->Metricsz(r);
  });
  server->AddEndpoint("/tracez", [s = server.get()](const HttpRequest& r) {
    return s->Tracez(r);
  });
  server->AddEndpoint("/quitquitquit",
                      [s = server.get()](const HttpRequest& r) {
                        return s->Quitquitquit(r);
                      });
  CASCN_LOG(INFO) << "debug server listening on http://"
                  << server->options_.bind_address << ":" << server->port_;
  return server;
}

DebugServer::~DebugServer() { Stop(); }

Status DebugServer::Listen() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    return Status::IoError(StrFormat("debug server: socket() failed: %s",
                                     std::strerror(errno)));
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("debug server: bad bind address: " +
                                   options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string error = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError(StrFormat(
        "debug server: cannot bind %s:%d: %s", options_.bind_address.c_str(),
        options_.port, error.c_str()));
  }
  if (::listen(listen_fd_, 16) < 0) {
    const std::string error = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("debug server: listen() failed: " + error);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0)
    port_ = ntohs(bound.sin_port);
  if (::pipe(wake_pipe_) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("debug server: pipe() failed");
  }
  return Status::OK();
}

void DebugServer::Stop() {
  std::thread thread;
  {
    std::lock_guard<std::mutex> lock(lifecycle_mutex_);
    if (!running_) return;
    running_ = false;
    thread = std::move(thread_);
  }
  if (wake_pipe_[1] >= 0) {
    const char byte = 'q';
    [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
  if (thread.joinable()) thread.join();
  for (int* fd : {&listen_fd_, &wake_pipe_[0], &wake_pipe_[1]}) {
    if (*fd >= 0) ::close(*fd);
    *fd = -1;
  }
}

void DebugServer::Loop() {
  for (;;) {
    struct pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_pipe_[0], POLLIN, 0};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      CASCN_LOG(WARNING) << "debug server: poll() failed: "
                         << std::strerror(errno);
      return;
    }
    if (fds[1].revents != 0) return;  // Stop() woke us
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    HandleConnection(conn);
    ::close(conn);
  }
}

void DebugServer::HandleConnection(int fd) {
  SetIoTimeouts(fd);
  std::string raw;
  char buffer[2048];
  while (raw.find("\r\n\r\n") == std::string::npos &&
         raw.size() < kMaxRequestBytes) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    raw.append(buffer, static_cast<size_t>(n));
  }
  const size_t line_end = raw.find("\r\n");
  HttpResponse response;
  HttpRequest request;
  if (line_end == std::string::npos) {
    response = {400, "text/plain; charset=utf-8", "malformed request\n"};
  } else {
    // Request line: METHOD SP TARGET SP VERSION.
    const std::string_view line(raw.data(), line_end);
    const size_t sp1 = line.find(' ');
    const size_t sp2 =
        sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
    if (sp2 == std::string_view::npos) {
      response = {400, "text/plain; charset=utf-8", "malformed request\n"};
    } else {
      request.method = std::string(line.substr(0, sp1));
      ParseTarget(line.substr(sp1 + 1, sp2 - sp1 - 1), &request);
      response = Dispatch(request);
    }
  }
  std::ostringstream out;
  out << "HTTP/1.1 " << response.status << " "
      << StatusReason(response.status) << "\r\n"
      << "Content-Type: " << response.content_type << "\r\n"
      << "Content-Length: " << response.body.size() << "\r\n"
      << "Connection: close\r\n\r\n";
  if (WriteAll(fd, out.str())) WriteAll(fd, response.body);
}

HttpResponse DebugServer::Dispatch(const HttpRequest& request) {
  if (request.method != "GET" && request.method != "POST")
    return {405, "text/plain; charset=utf-8", "method not allowed\n"};
  Handler handler;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = endpoints_.find(request.path);
    if (it != endpoints_.end()) handler = it->second;
  }
  if (handler == nullptr)
    return {404, "text/plain; charset=utf-8",
            "unknown endpoint " + request.path + " (try /)\n"};
  return handler(request);
}

HttpResponse DebugServer::Index(const HttpRequest&) {
  std::ostringstream out;
  out << "cascn debug server\nendpoints:\n";
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [path, handler] : endpoints_)
    if (path != "/") out << "  " << path << "\n";
  return {200, "text/plain; charset=utf-8", out.str()};
}

HttpResponse DebugServer::Statusz(const HttpRequest&) {
  const double uptime_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_time_)
          .count();
  std::ostringstream out;
  out << "cascn statusz\n";
  out << "build_sha: " << CASCN_GIT_SHA << "\n";
  out << StrFormat("uptime_s: %.1f\n", uptime_s);
  out << "pid: " << static_cast<long>(::getpid()) << "\n";
  std::vector<std::pair<std::string, std::function<std::string()>>> sections;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!config_.empty()) {
      out << "\n[config]\n";
      for (const auto& [key, value] : config_)
        out << "  " << key << " = " << value << "\n";
    }
    sections = sections_;
  }
  // Sections render OUTSIDE the registration lock: they call into other
  // subsystems (router snapshots, watchdog state) and must be free to take
  // those locks without ordering against ours.
  for (const auto& [title, render] : sections) {
    out << "\n[" << title << "]\n";
    out << render();
    out << "\n";
  }
  return {200, "text/plain; charset=utf-8", out.str()};
}

HttpResponse DebugServer::Metricsz(const HttpRequest& request) {
  // One scrape-local registry: the process-global metrics plus whatever
  // each exporter contributes, unified so text and JSON stay one document.
  MetricsRegistry scratch;
  MetricsRegistry::Get().ExportTo(scratch);
  std::vector<std::function<void(MetricsRegistry&)>> exporters;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    exporters = exporters_;
  }
  for (const auto& exporter : exporters) exporter(scratch);
  if (request.QueryOr("format", "text") == "json")
    return {200, "application/json", scratch.JsonSnapshot()};
  return {200, "text/plain; charset=utf-8", scratch.TextSnapshot()};
}

HttpResponse DebugServer::Tracez(const HttpRequest&) {
  return {200, "application/json", Tracer::Get().TracezJson()};
}

HttpResponse DebugServer::Quitquitquit(const HttpRequest&) {
  if (!options_.allow_quit)
    return {403, "text/plain; charset=utf-8",
            "quitquitquit is disabled; restart with the allow-quit flag "
            "(--debug_allow_quit) to enable remote shutdown\n"};
  quit_requested_.store(true, std::memory_order_relaxed);
  CASCN_LOG(INFO) << "debug server: quitquitquit accepted";
  return {200, "text/plain; charset=utf-8", "bye\n"};
}

void DebugServer::AddEndpoint(const std::string& path, Handler handler) {
  std::lock_guard<std::mutex> lock(mutex_);
  endpoints_[path] = std::move(handler);
}

void DebugServer::AddStatusSection(const std::string& title,
                                   std::function<std::string()> render) {
  std::lock_guard<std::mutex> lock(mutex_);
  sections_.emplace_back(title, std::move(render));
}

void DebugServer::AddConfig(const std::string& key,
                            const std::string& value) {
  std::lock_guard<std::mutex> lock(mutex_);
  config_.emplace_back(key, value);
}

void DebugServer::AddMetricsExporter(
    std::function<void(MetricsRegistry&)> exporter) {
  std::lock_guard<std::mutex> lock(mutex_);
  exporters_.push_back(std::move(exporter));
}

uint64_t DebugServer::servers_started() {
  return g_servers_started.load(std::memory_order_relaxed);
}

int DebugServer::EnvPort() {
  const char* env = std::getenv("CASCN_DEBUG_PORT");
  if (env == nullptr || env[0] == '\0') return -1;
  char* end = nullptr;
  const long port = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || port < 0 || port > 65535) return -1;
  return static_cast<int>(port);
}

Result<HttpResult> HttpGet(int port, const std::string& path_and_query,
                           double timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError("HttpGet: socket() failed");
  struct timeval tv;
  tv.tv_sec = static_cast<time_t>(timeout_ms / 1000.0);
  tv.tv_usec = static_cast<suseconds_t>(
      (timeout_ms - static_cast<double>(tv.tv_sec) * 1000.0) * 1000.0);
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::IoError(
        StrFormat("HttpGet: cannot connect to 127.0.0.1:%d: %s", port,
                  error.c_str()));
  }
  const std::string request = "GET " + path_and_query +
                              " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                              "Connection: close\r\n\r\n";
  if (!WriteAll(fd, request)) {
    ::close(fd);
    return Status::IoError("HttpGet: short write");
  }
  std::string raw;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n < 0) {
      ::close(fd);
      return Status::IoError("HttpGet: read failed or timed out");
    }
    if (n == 0) break;
    raw.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  // "HTTP/1.1 200 OK\r\n...\r\n\r\nbody"
  if (raw.rfind("HTTP/1.", 0) != 0)
    return Status::IoError("HttpGet: malformed response");
  const size_t sp = raw.find(' ');
  HttpResult result;
  result.status = std::atoi(raw.c_str() + sp + 1);
  const size_t body_at = raw.find("\r\n\r\n");
  if (body_at != std::string::npos) result.body = raw.substr(body_at + 4);
  return result;
}

}  // namespace cascn::obs
