// Stall watchdog: cheap per-worker heartbeats plus a background sampler
// that turns "a worker stopped making progress while work was queued" into
// a metric bump, a self-dump of diagnostics, and a health transition —
// instead of a silent wedge an operator discovers hours later.
//
//   obs::WorkerHeartbeat heartbeat;         // stamped by the worker loop
//   ...
//   obs::Watchdog watchdog({.poll_ms = 50, .stall_ms = 1000,
//                           .anomaly_dir = "anomalies"});
//   watchdog.Watch({.name = "shard-0",
//                   .progress = [&] { return heartbeat.count(); },
//                   .busy = [&] { return service.queue_depth() > 0; },
//                   .on_stall = [&] { /* degrade health, dump rings */ },
//                   .on_recover = [&] { /* restore health */ }});
//   watchdog.Start();
//
// Detection: a target is STALLED when its progress counter has not moved
// for longer than `stall_ms` while `busy()` reports pending work. An idle
// target (no work queued) re-arms continuously and can never false-
// positive. Each stall episode fires exactly once — on_stall runs when the
// stall is first detected, then the target stays latched until progress
// resumes, which fires on_recover and re-arms detection for the next
// episode. No re-fire spam while a long stall persists.
//
// Reaction: every stall bumps the global `watchdog_stalls_total` counter,
// writes the open-span table (see Tracer::OpenSpans — Start() enables span
// sampling so the table is populated) to a sequenced JSON file in
// `anomaly_dir`, and runs the target's on_stall hook — which is where the
// serving layer dumps flight recorders and flips shard health to Degraded.

#ifndef CASCN_OBS_WATCHDOG_H_
#define CASCN_OBS_WATCHDOG_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace cascn::obs {

/// Liveness stamp for a worker loop: one relaxed increment per unit of
/// progress (a drained request, a trained batch). The watchdog samples the
/// count; any change between samples is progress.
class WorkerHeartbeat {
 public:
  void Beat() { count_.fetch_add(1, std::memory_order_relaxed); }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> count_{0};
};

/// One thing the watchdog watches. All callbacks run on the watchdog
/// thread; they must be thread-safe, must not block for long, and must
/// outlive the watchdog (Stop() the watchdog before destroying whatever
/// they capture).
struct WatchTarget {
  std::string name;
  /// Monotonic progress indicator (typically WorkerHeartbeat::count).
  std::function<uint64_t()> progress;
  /// Whether the target currently has pending work. Stalls are only
  /// declared while busy; an idle target re-arms continuously.
  std::function<bool()> busy;
  /// Fired once per stall episode, after the watchdog's own reaction
  /// (counter bump + open-span dump). Optional.
  std::function<void()> on_stall;
  /// Fired when progress resumes after a stall. Optional.
  std::function<void()> on_recover;
};

struct WatchdogOptions {
  /// Sampling period of the background thread.
  double poll_ms = 50.0;
  /// No progress for longer than this, while busy, declares a stall.
  double stall_ms = 1000.0;
  /// Directory stall dumps (open-span tables) are written to, as
  /// `watchdog_<target>.<seq>.json`. Empty disables file dumps (the
  /// counter and hooks still fire).
  std::string anomaly_dir;
  /// Injectable clock for deterministic tests.
  std::function<std::chrono::steady_clock::time_point()> clock;
};

/// Background stall detector. Thread-safe.
class Watchdog {
 public:
  explicit Watchdog(WatchdogOptions options);
  ~Watchdog();  // implies Stop()

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Registers a target. Safe while running.
  void Watch(WatchTarget target);

  /// Starts the sampling thread (idempotent). Also enables tracer span
  /// sampling so stall dumps contain the open-span table.
  void Start();
  /// Stops and joins the sampling thread (idempotent).
  void Stop();

  /// Runs one detection pass inline (what the background thread does every
  /// poll_ms). Exposed for deterministic tests with an injected clock.
  void PollOnce();

  /// Stall episodes detected since construction. Also exported as the
  /// global `watchdog_stalls_total` counter.
  uint64_t stalls_total() const {
    return stalls_.load(std::memory_order_relaxed);
  }
  /// Recoveries observed (progress resumed after a stall).
  uint64_t recoveries_total() const {
    return recoveries_.load(std::memory_order_relaxed);
  }
  /// Path of the most recent stall dump ("" before the first).
  std::string last_dump_path() const;

  /// Per-target state as a JSON array, for /statusz.
  std::string StatusJson() const;

 private:
  struct TargetState {
    WatchTarget target;
    uint64_t last_progress = 0;
    std::chrono::steady_clock::time_point last_change;
    bool stalled = false;
    uint64_t stalls = 0;
  };

  void Loop();
  void DumpStall(const std::string& name, uint64_t last_progress);

  const WatchdogOptions options_;
  std::atomic<uint64_t> stalls_{0};
  std::atomic<uint64_t> recoveries_{0};
  std::atomic<uint64_t> dump_seq_{0};

  mutable std::mutex mutex_;  // guards targets_, last_dump_path_, thread state
  std::vector<TargetState> targets_;
  std::string last_dump_path_;
  bool running_ = false;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
  std::thread thread_;
};

}  // namespace cascn::obs

#endif  // CASCN_OBS_WATCHDOG_H_
