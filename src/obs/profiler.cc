#include "obs/profiler.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "common/string_util.h"
#include "obs/metrics_registry.h"

namespace cascn::obs {

namespace {

/// Ops sorted by forward+backward time, busiest first; idle ops dropped.
std::vector<std::pair<OpKind, const OpStats*>> BusyOps(
    const Profiler::Snapshot& snap) {
  std::vector<std::pair<OpKind, const OpStats*>> busy;
  for (int i = 0; i < kNumOpKinds; ++i) {
    const OpStats& s = snap.ops[static_cast<size_t>(i)];
    if (s.forward_calls + s.backward_calls > 0)
      busy.emplace_back(static_cast<OpKind>(i), &s);
  }
  std::sort(busy.begin(), busy.end(), [](const auto& a, const auto& b) {
    return a.second->forward_ns + a.second->backward_ns >
           b.second->forward_ns + b.second->backward_ns;
  });
  return busy;
}

}  // namespace

std::string_view OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kLeaf: return "leaf";
    case OpKind::kAdd: return "add";
    case OpKind::kSub: return "sub";
    case OpKind::kMul: return "mul";
    case OpKind::kAddRowBroadcast: return "add_row_broadcast";
    case OpKind::kScalarMul: return "scalar_mul";
    case OpKind::kAddScalar: return "add_scalar";
    case OpKind::kScaleByScalar: return "scale_by_scalar";
    case OpKind::kMatMul: return "mat_mul";
    case OpKind::kSparseMatMul: return "sparse_mat_mul";
    case OpKind::kSigmoid: return "sigmoid";
    case OpKind::kTanh: return "tanh";
    case OpKind::kRelu: return "relu";
    case OpKind::kSquare: return "square";
    case OpKind::kSoftplus: return "softplus";
    case OpKind::kSoftmaxRows: return "softmax_rows";
    case OpKind::kSum: return "sum";
    case OpKind::kMean: return "mean";
    case OpKind::kSumRows: return "sum_rows";
    case OpKind::kMeanRows: return "mean_rows";
    case OpKind::kConcatCols: return "concat_cols";
    case OpKind::kConcatRows: return "concat_rows";
    case OpKind::kSliceRows: return "slice_rows";
    case OpKind::kGatherRows: return "gather_rows";
    case OpKind::kTranspose: return "transpose";
    case OpKind::kNumOpKinds: break;
  }
  return "unknown";
}

Profiler::Profiler() {
  const char* env = std::getenv("CASCN_PROFILE");
  if (env != nullptr && env[0] != '\0' && std::string_view(env) != "0")
    enabled_.store(true, std::memory_order_relaxed);
}

Profiler& Profiler::Get() {
  static Profiler* profiler = new Profiler();  // leaked: see Tracer::Get
  return *profiler;
}

void Profiler::Reset() {
  for (auto& op : ops_) {
    op.forward_calls.store(0, std::memory_order_relaxed);
    op.forward_ns.store(0, std::memory_order_relaxed);
    op.forward_flops.store(0, std::memory_order_relaxed);
    op.forward_bytes.store(0, std::memory_order_relaxed);
    op.backward_calls.store(0, std::memory_order_relaxed);
    op.backward_ns.store(0, std::memory_order_relaxed);
    op.backward_flops.store(0, std::memory_order_relaxed);
  }
  live_bytes_.store(0, std::memory_order_relaxed);
  peak_live_bytes_.store(0, std::memory_order_relaxed);
  alloc_count_.store(0, std::memory_order_relaxed);
  free_count_.store(0, std::memory_order_relaxed);
}

void Profiler::RecordForward(OpKind kind, uint64_t ns, uint64_t flops,
                             uint64_t bytes) {
  AtomicOpStats& op = ops_[static_cast<size_t>(kind)];
  op.forward_calls.fetch_add(1, std::memory_order_relaxed);
  op.forward_ns.fetch_add(ns, std::memory_order_relaxed);
  op.forward_flops.fetch_add(flops, std::memory_order_relaxed);
  op.forward_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

void Profiler::RecordBackward(OpKind kind, uint64_t ns, uint64_t flops) {
  AtomicOpStats& op = ops_[static_cast<size_t>(kind)];
  op.backward_calls.fetch_add(1, std::memory_order_relaxed);
  op.backward_ns.fetch_add(ns, std::memory_order_relaxed);
  op.backward_flops.fetch_add(flops, std::memory_order_relaxed);
}

Profiler::Snapshot Profiler::TakeSnapshot() const {
  Snapshot snap;
  for (int i = 0; i < kNumOpKinds; ++i) {
    const AtomicOpStats& a = ops_[static_cast<size_t>(i)];
    OpStats& s = snap.ops[static_cast<size_t>(i)];
    s.forward_calls = a.forward_calls.load(std::memory_order_relaxed);
    s.forward_ns = a.forward_ns.load(std::memory_order_relaxed);
    s.forward_flops = a.forward_flops.load(std::memory_order_relaxed);
    s.forward_bytes = a.forward_bytes.load(std::memory_order_relaxed);
    s.backward_calls = a.backward_calls.load(std::memory_order_relaxed);
    s.backward_ns = a.backward_ns.load(std::memory_order_relaxed);
    s.backward_flops = a.backward_flops.load(std::memory_order_relaxed);
  }
  snap.live_bytes = live_bytes();
  snap.peak_live_bytes = peak_live_bytes();
  snap.alloc_count = alloc_count();
  snap.free_count = free_count();
  return snap;
}

uint64_t Profiler::Snapshot::TotalNs() const {
  uint64_t total = 0;
  for (const OpStats& s : ops) total += s.forward_ns + s.backward_ns;
  return total;
}

std::string Profiler::Snapshot::ToJson() const {
  std::ostringstream out;
  out << "{\"ops\": [";
  bool first = true;
  for (const auto& [kind, s] : BusyOps(*this)) {
    if (!first) out << ", ";
    first = false;
    out << StrFormat(
        "{\"op\": \"%s\", \"forward_calls\": %llu, \"forward_ns\": %llu, "
        "\"forward_flops\": %llu, \"forward_bytes\": %llu, "
        "\"backward_calls\": %llu, \"backward_ns\": %llu, "
        "\"backward_flops\": %llu}",
        std::string(OpKindName(kind)).c_str(),
        static_cast<unsigned long long>(s->forward_calls),
        static_cast<unsigned long long>(s->forward_ns),
        static_cast<unsigned long long>(s->forward_flops),
        static_cast<unsigned long long>(s->forward_bytes),
        static_cast<unsigned long long>(s->backward_calls),
        static_cast<unsigned long long>(s->backward_ns),
        static_cast<unsigned long long>(s->backward_flops));
  }
  out << StrFormat(
      "], \"memory\": {\"live_bytes\": %lld, \"peak_live_bytes\": %lld, "
      "\"alloc_count\": %llu, \"free_count\": %llu}}",
      static_cast<long long>(live_bytes),
      static_cast<long long>(peak_live_bytes),
      static_cast<unsigned long long>(alloc_count),
      static_cast<unsigned long long>(free_count));
  return out.str();
}

std::string Profiler::Snapshot::ToTable() const {
  std::ostringstream out;
  out << "per-op profile (CASCN_PROFILE):\n";
  out << StrFormat("  %-18s %10s %10s %10s %10s %10s %12s\n", "op", "calls",
                   "fwd_ms", "bwd_ms", "total_ms", "est_GFLOP", "out_MB");
  const auto busy = BusyOps(*this);
  if (busy.empty()) out << "  (no ops recorded)\n";
  for (const auto& [kind, s] : busy) {
    const double fwd_ms = static_cast<double>(s->forward_ns) / 1e6;
    const double bwd_ms = static_cast<double>(s->backward_ns) / 1e6;
    const double gflop =
        static_cast<double>(s->forward_flops + s->backward_flops) / 1e9;
    out << StrFormat("  %-18s %10llu %10.3f %10.3f %10.3f %10.3f %12.3f\n",
                     std::string(OpKindName(kind)).c_str(),
                     static_cast<unsigned long long>(s->forward_calls),
                     fwd_ms, bwd_ms, fwd_ms + bwd_ms, gflop,
                     static_cast<double>(s->forward_bytes) / 1e6);
  }
  out << StrFormat(
      "  memory: live=%lld bytes, peak=%lld bytes, allocs=%llu, frees=%llu\n",
      static_cast<long long>(live_bytes),
      static_cast<long long>(peak_live_bytes),
      static_cast<unsigned long long>(alloc_count),
      static_cast<unsigned long long>(free_count));
  return out.str();
}

void Profiler::ExportToRegistry(MetricsRegistry& registry) const {
  const Snapshot snap = TakeSnapshot();
  for (const auto& [kind, s] : BusyOps(snap)) {
    const std::string base = "profile_op_" + std::string(OpKindName(kind));
    registry.GetGauge(base + "_calls")
        .Set(static_cast<double>(s->forward_calls));
    registry.GetGauge(base + "_forward_ns")
        .Set(static_cast<double>(s->forward_ns));
    registry.GetGauge(base + "_backward_ns")
        .Set(static_cast<double>(s->backward_ns));
  }
  registry.GetGauge("profile_live_bytes")
      .Set(static_cast<double>(snap.live_bytes));
  registry.GetGauge("profile_peak_live_bytes")
      .Set(static_cast<double>(snap.peak_live_bytes));
  registry.GetGauge("profile_alloc_total")
      .Set(static_cast<double>(snap.alloc_count));
  registry.GetGauge("profile_free_total")
      .Set(static_cast<double>(snap.free_count));
}

}  // namespace cascn::obs
