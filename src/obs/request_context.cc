#include "obs/request_context.h"

#include <atomic>
#include <utility>

namespace cascn::obs {

namespace {

// splitmix64 finalizer: bijective, so distinct counter values can never
// collide, and consecutive submissions land far apart in id space.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

uint64_t NewTraceId() {
  static std::atomic<uint64_t> next{1};
  uint64_t id = Mix64(next.fetch_add(1, std::memory_order_relaxed));
  // Mix64 maps exactly one input to 0; skip it so 0 stays "no context".
  if (id == 0) id = Mix64(next.fetch_add(1, std::memory_order_relaxed));
  return id;
}

RequestContext RequestContext::New(std::string tenant, std::string session_id,
                                   double deadline_ms) {
  RequestContext ctx;
  ctx.trace_id = NewTraceId();
  ctx.tenant = std::move(tenant);
  ctx.session_id = std::move(session_id);
  ctx.deadline_ms = deadline_ms;
  return ctx;
}

}  // namespace cascn::obs
