#include "obs/metrics_registry.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <tuple>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"

namespace cascn::obs {

namespace {

// JSON string escape for metric names in expositions. Names built with
// EscapeLabelValue contain backslashes and quotes by construction (the
// label escapes themselves), so the exposition must escape them again or
// the emitted JSON is unparseable.
std::string JsonEscapeName(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", static_cast<unsigned>(
                                          static_cast<unsigned char>(c)));
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Text exposition is line-oriented: a newline inside a name would split one
// metric across lines. Quotes and backslashes stay as-is — label VALUES are
// already escaped at name construction (EscapeLabelValue), and the text
// format reads `name{label="value"}` literally — so only control characters
// need rendering.
std::string TextEscapeName(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    switch (c) {
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", static_cast<unsigned>(
                                          static_cast<unsigned char>(c)));
        } else {
          out += c;
        }
    }
  }
  return out;
}

// OpenMetrics metadata (# HELP / # TYPE) attaches to the metric FAMILY: the
// name with any {label="..."} sample suffix stripped.
std::string_view FamilyName(std::string_view name) {
  const size_t brace = name.find('{');
  return brace == std::string_view::npos ? name : name.substr(0, brace);
}

// Emits the family's # HELP and # TYPE comment lines before its first
// sample. `seen` dedups across labeled samples of one family (and across
// sections, so a name collision between kinds cannot emit two conflicting
// TYPE lines for the same family).
void EmitFamilyHeader(std::ostringstream& out, std::string_view name,
                      const char* type, const char* help,
                      std::set<std::string_view>& seen) {
  const std::string_view family = FamilyName(name);
  if (!seen.insert(family).second) return;
  const std::string escaped = TextEscapeName(family);
  out << "# HELP " << escaped << " " << help << "\n";
  out << "# TYPE " << escaped << " " << type << "\n";
}

}  // namespace

std::string EscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\0': break;  // see header: NULs are dropped, not escaped
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\x%02x", static_cast<unsigned>(
                                          static_cast<unsigned char>(c)));
        } else {
          out += c;
        }
    }
  }
  return out;
}

Histogram::Histogram(int num_buckets)
    : num_buckets_(num_buckets),
      buckets_(new std::atomic<uint64_t>[static_cast<size_t>(num_buckets)]) {
  CASCN_CHECK(num_buckets >= 1 && num_buckets <= 63)
      << "log2 bucket count out of range: " << num_buckets;
  for (int i = 0; i < num_buckets_; ++i)
    buckets_[i].store(0, std::memory_order_relaxed);
}

void Histogram::Record(uint64_t value) {
  int bucket = 0;
  while (bucket + 1 < num_buckets_ &&
         (uint64_t{1} << (bucket + 1)) <= value)
    ++bucket;
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t prev = max_.load(std::memory_order_relaxed);
  while (prev < value && !max_.compare_exchange_weak(
                             prev, value, std::memory_order_relaxed)) {
  }
}

double Histogram::Snapshot::PercentileUpperBound(double q) const {
  if (count == 0) return 0.0;
  const double target = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) >= target)
      return static_cast<double>(uint64_t{1} << (i + 1));
  }
  return static_cast<double>(uint64_t{1} << buckets.size());
}

double Histogram::Snapshot::Percentile(double q) const {
  if (count == 0) return 0.0;
  const double target = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) < target) continue;
    // Bucket i covers [2^i, 2^{i+1}), except bucket 0 which also absorbs 0
    // and the last bucket which is open-ended; interpolate linearly inside
    // it, treating the observed max as the top edge of the last bucket.
    const double lower = i == 0 ? 0.0 : static_cast<double>(uint64_t{1} << i);
    double upper = static_cast<double>(uint64_t{1} << (i + 1));
    if (i + 1 == buckets.size())
      upper = std::max(lower, static_cast<double>(max));
    const double frac =
        (target - before) / static_cast<double>(buckets[i]);
    const double estimate = lower + frac * (upper - lower);
    return std::min(estimate, static_cast<double>(max));
  }
  return static_cast<double>(max);
}

std::string Histogram::Snapshot::ToJson() const {
  return StrFormat(
      "{\"count\": %llu, \"mean\": %.3f, \"p50\": %.1f, \"p90\": %.1f, "
      "\"p95\": %.1f, \"p99\": %.1f, \"max\": %llu}",
      static_cast<unsigned long long>(count), mean, Percentile(0.50),
      Percentile(0.90), Percentile(0.95), Percentile(0.99),
      static_cast<unsigned long long>(max));
}

void Histogram::MergeFrom(const Snapshot& snapshot) {
  for (size_t i = 0; i < snapshot.buckets.size(); ++i) {
    if (snapshot.buckets[i] == 0) continue;
    const size_t bucket =
        std::min(i, static_cast<size_t>(num_buckets_ - 1));
    buckets_[bucket].fetch_add(snapshot.buckets[i],
                               std::memory_order_relaxed);
  }
  sum_.fetch_add(snapshot.sum, std::memory_order_relaxed);
  uint64_t prev = max_.load(std::memory_order_relaxed);
  while (prev < snapshot.max &&
         !max_.compare_exchange_weak(prev, snapshot.max,
                                     std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  Snapshot snap;
  snap.buckets.resize(static_cast<size_t>(num_buckets_));
  for (int i = 0; i < num_buckets_; ++i) {
    snap.buckets[static_cast<size_t>(i)] =
        buckets_[i].load(std::memory_order_relaxed);
    snap.count += snap.buckets[static_cast<size_t>(i)];
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  snap.mean = snap.count == 0 ? 0.0
                              : static_cast<double>(snap.sum) /
                                    static_cast<double>(snap.count);
  return snap;
}

MetricsRegistry& MetricsRegistry::Get() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  CASCN_CHECK(name.find('\0') == std::string::npos)
      << "metric name contains embedded NUL";
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  CASCN_CHECK(name.find('\0') == std::string::npos)
      << "metric name contains embedded NUL";
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         int num_buckets) {
  CASCN_CHECK(name.find('\0') == std::string::npos)
      << "metric name contains embedded NUL";
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(num_buckets);
  return *slot;
}

void MetricsRegistry::ExportTo(MetricsRegistry& dest) const {
  // Snapshot under our lock, write into `dest` unlocked: never holding two
  // registry mutexes at once makes lock inversion impossible no matter how
  // exporters chain registries together.
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::tuple<std::string, int, Histogram::Snapshot>> histograms;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, counter] : counters_)
      counters.emplace_back(name, counter->value());
    for (const auto& [name, gauge] : gauges_)
      gauges.emplace_back(name, gauge->value());
    for (const auto& [name, histogram] : histograms_)
      histograms.emplace_back(name, histogram->num_buckets(),
                              histogram->TakeSnapshot());
  }
  for (const auto& [name, value] : counters)
    dest.GetCounter(name).Increment(value);
  for (const auto& [name, value] : gauges) dest.GetGauge(name).Set(value);
  for (const auto& [name, num_buckets, snapshot] : histograms)
    dest.GetHistogram(name, num_buckets).MergeFrom(snapshot);
}

std::string MetricsRegistry::TextSnapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  // string_views into map keys: stable for the duration of the snapshot.
  std::set<std::string_view> seen_families;
  for (const auto& [name, counter] : counters_) {
    EmitFamilyHeader(out, name, "counter", "Monotonic event count.",
                     seen_families);
    out << TextEscapeName(name) << " = " << counter->value() << "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    EmitFamilyHeader(out, name, "gauge", "Point-in-time value.",
                     seen_families);
    out << TextEscapeName(name) << " = " << StrFormat("%.6g", gauge->value())
        << "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    EmitFamilyHeader(out, name, "histogram",
                     "Log2-bucketed distribution (native units).",
                     seen_families);
    const Histogram::Snapshot snap = histogram->TakeSnapshot();
    out << TextEscapeName(name)
        << StrFormat(
               ": n=%llu mean=%.1f p50~%.0f p90~%.0f p95~%.0f p99~%.0f "
               "max=%llu\n",
               static_cast<unsigned long long>(snap.count), snap.mean,
               snap.Percentile(0.50), snap.Percentile(0.90),
               snap.Percentile(0.95), snap.Percentile(0.99),
               static_cast<unsigned long long>(snap.max));
  }
  return out.str();
}

std::string MetricsRegistry::JsonSnapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  out << "{\"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out << ", ";
    first = false;
    out << "\"" << JsonEscapeName(name) << "\": " << counter->value();
  }
  out << "}, \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) out << ", ";
    first = false;
    out << "\"" << JsonEscapeName(name)
        << "\": " << StrFormat("%.6g", gauge->value());
  }
  out << "}, \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    if (!first) out << ", ";
    first = false;
    out << "\"" << JsonEscapeName(name)
        << "\": " << histogram->TakeSnapshot().ToJson();
  }
  out << "}}";
  return out.str();
}

}  // namespace cascn::obs
