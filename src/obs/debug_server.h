// Live introspection server: a tiny, dependency-free HTTP/1.1 endpoint for
// looking inside a RUNNING process, the pull-side complement to the
// push-side artifacts (trace files, flight dumps, telemetry) that only
// materialize at exit or on anomaly triggers.
//
//   auto server = obs::DebugServer::Start({.port = 8080});
//   // curl http://127.0.0.1:8080/statusz
//
// Built-in endpoints:
//   /statusz   build sha, uptime, config, plus registered status sections
//   /metricsz  unified metrics exposition (text; ?format=json for JSON) —
//              the process-global MetricsRegistry merged with every
//              registered exporter's output in one scrape-local registry
//   /tracez    per-span-name count/p50/p95 aggregates + the table of spans
//              open right now across threads (Start() enables tracer span
//              sampling to feed both)
//   /quitquitquit  graceful-exit request; 403 unless opted in
//
// /flightz and /sloz are registered by the layers that own the data (the
// shard router / prediction service) via AddEndpoint — obs cannot depend on
// serve or cluster.
//
// Security posture: binds 127.0.0.1 by default — the server is a local
// operator tool, never an internet-facing surface. It speaks just enough
// HTTP/1.1 for curl and a browser (GET, Connection: close, no keep-alive,
// no TLS). /quitquitquit is additionally gated behind
// DebugServerOptions::allow_quit so a stray local scrape cannot stop a
// serving process.
//
// Implementation: one dedicated thread runs a blocking poll() accept loop
// and serves each connection to completion — introspection traffic is a
// human with curl, not a fleet of scrapers, so single-threaded accept keeps
// the server ~free when idle and trivially safe. When the server is never
// started, no thread, socket, or sampling cost exists at all
// (servers_started() lets benchmarks CHECK this).

#ifndef CASCN_OBS_DEBUG_SERVER_H_
#define CASCN_OBS_DEBUG_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "obs/metrics_registry.h"

namespace cascn::obs {

/// One parsed request, enough for debug endpoints.
struct HttpRequest {
  std::string method;
  std::string path;  // without the query string
  std::map<std::string, std::string> query;

  std::string QueryOr(const std::string& key,
                      const std::string& fallback) const {
    const auto it = query.find(key);
    return it == query.end() ? fallback : it->second;
  }
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

struct DebugServerOptions {
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  int port = 0;
  /// Listen address. Localhost by default; see the security posture above
  /// before binding anything wider.
  std::string bind_address = "127.0.0.1";
  /// Opt-in gate for /quitquitquit; while false the endpoint answers 403.
  bool allow_quit = false;
};

/// The introspection server. Thread-safe; endpoints/sections/exporters may
/// be registered while serving. Handlers run on the server thread and must
/// outlive the server — Stop() it before destroying anything they capture.
class DebugServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  /// Binds, listens, and starts the serving thread. Enables tracer span
  /// sampling (the /tracez feed). Fails if the address/port cannot be
  /// bound.
  static Result<std::unique_ptr<DebugServer>> Start(
      DebugServerOptions options);

  ~DebugServer();  // implies Stop()

  DebugServer(const DebugServer&) = delete;
  DebugServer& operator=(const DebugServer&) = delete;

  /// Stops the serving thread and closes the socket. Idempotent.
  void Stop();

  /// The bound port (the actual one when options.port was 0).
  int port() const { return port_; }

  /// Registers `handler` for exact-match `path` (e.g. "/flightz").
  /// Replaces any previous handler for the path.
  void AddEndpoint(const std::string& path, Handler handler);
  /// Appends a named section to /statusz; `render` is called per request.
  void AddStatusSection(const std::string& title,
                        std::function<std::string()> render);
  /// Adds a `key = value` line to the /statusz config block.
  void AddConfig(const std::string& key, const std::string& value);
  /// Registers a metrics exporter: on every /metricsz scrape it is invoked
  /// with a scrape-local registry that already holds the process-global
  /// metrics; whatever it writes appears in the same exposition.
  void AddMetricsExporter(std::function<void(MetricsRegistry&)> exporter);

  /// True once /quitquitquit has been accepted (allow_quit only). The
  /// owning binary polls this to exit gracefully.
  bool quit_requested() const {
    return quit_requested_.load(std::memory_order_relaxed);
  }

  /// Debug servers ever started in this process. Benchmarks CHECK this is
  /// zero on their no-introspection baselines: proof the control plane
  /// costs nothing when not asked for.
  static uint64_t servers_started();

  /// CASCN_DEBUG_PORT environment variable as an int, or -1 when unset /
  /// unparseable. Binaries use it as the default for --debug_port.
  static int EnvPort();

 private:
  explicit DebugServer(DebugServerOptions options);

  Status Listen();
  void Loop();
  void HandleConnection(int fd);
  HttpResponse Dispatch(const HttpRequest& request);

  HttpResponse Statusz(const HttpRequest& request);
  HttpResponse Metricsz(const HttpRequest& request);
  HttpResponse Tracez(const HttpRequest& request);
  HttpResponse Quitquitquit(const HttpRequest& request);
  HttpResponse Index(const HttpRequest& request);

  const DebugServerOptions options_;
  const std::chrono::steady_clock::time_point start_time_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  // written by Stop() to unblock poll()
  int port_ = 0;
  std::atomic<bool> quit_requested_{false};

  mutable std::mutex mutex_;  // guards the registration tables below
  std::map<std::string, Handler> endpoints_;
  std::vector<std::pair<std::string, std::function<std::string()>>>
      sections_;
  std::vector<std::pair<std::string, std::string>> config_;
  std::vector<std::function<void(MetricsRegistry&)>> exporters_;

  std::mutex lifecycle_mutex_;  // guards running_ / thread_
  bool running_ = false;
  std::thread thread_;
};

/// Minimal blocking HTTP GET against 127.0.0.1:`port`, for tests and bench
/// self-checks. Returns {status code, body} or an error if the connection
/// or read fails.
struct HttpResult {
  int status = 0;
  std::string body;
};
Result<HttpResult> HttpGet(int port, const std::string& path_and_query,
                           double timeout_ms = 5000.0);

}  // namespace cascn::obs

#endif  // CASCN_OBS_DEBUG_SERVER_H_
