#include "obs/slo.h"

#include <algorithm>

#include "common/string_util.h"
#include "obs/metrics_registry.h"

namespace cascn::obs {

SloTracker::SloTracker(SloOptions options) : options_([&] {
        // Degenerate windows would divide by zero in the ring arithmetic.
        options.fast_window_seconds = std::max(1, options.fast_window_seconds);
        options.slow_window_seconds =
            std::max(options.fast_window_seconds, options.slow_window_seconds);
        return options;
      }()) {}

void SloTracker::RecordRequest(std::string_view tenant, TimePoint now,
                               bool ok, uint64_t latency_us) {
  const bool good =
      ok && (options_.latency_slo_us == 0 ||
             latency_us <= options_.latency_slo_us);
  const int64_t second = ToSecond(now);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end())
    it = tenants_.emplace(std::string(tenant), TenantState{}).first;
  TenantState& state = it->second;
  if (state.ring.empty())
    state.ring.resize(static_cast<size_t>(options_.slow_window_seconds));
  const size_t size = state.ring.size();
  Bucket& bucket =
      state.ring[static_cast<size_t>(((second % static_cast<int64_t>(size)) +
                                      static_cast<int64_t>(size)) %
                                     static_cast<int64_t>(size))];
  // A slot is reused once its previous second falls out of the slow window;
  // seeing a different second means stale contents, so reset in place.
  if (bucket.second != second) bucket = Bucket{second, 0, 0};
  bucket.total += 1;
  if (good) bucket.good += 1;
}

SloTracker::WindowSums SloTracker::SumWindow(const TenantState& state,
                                             int64_t now_second,
                                             int window_seconds) const {
  WindowSums sums;
  for (const Bucket& bucket : state.ring) {
    if (bucket.second < 0) continue;
    if (bucket.second > now_second ||
        bucket.second <= now_second - window_seconds)
      continue;
    sums.total += bucket.total;
    sums.good += bucket.good;
  }
  return sums;
}

TenantSli SloTracker::MakeSli(const std::string& tenant,
                              const TenantState& state,
                              int64_t now_second) const {
  const WindowSums fast =
      SumWindow(state, now_second, options_.fast_window_seconds);
  const WindowSums slow =
      SumWindow(state, now_second, options_.slow_window_seconds);
  const double budget = std::max(1e-9, 1.0 - options_.availability_target);

  TenantSli sli;
  sli.tenant = tenant;
  sli.fast_total = fast.total;
  sli.fast_good = fast.good;
  sli.slow_total = slow.total;
  sli.slow_good = slow.good;
  if (fast.total > 0)
    sli.fast_availability =
        static_cast<double>(fast.good) / static_cast<double>(fast.total);
  if (slow.total > 0)
    sli.slow_availability =
        static_cast<double>(slow.good) / static_cast<double>(slow.total);
  sli.fast_burn = (1.0 - sli.fast_availability) / budget;
  sli.slow_burn = (1.0 - sli.slow_availability) / budget;
  sli.burning = sli.fast_burn > options_.fast_burn_threshold &&
                sli.slow_burn > options_.slow_burn_threshold;
  return sli;
}

std::vector<TenantSli> SloTracker::Snapshot(TimePoint now) const {
  const int64_t now_second = ToSecond(now);
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TenantSli> slis;
  slis.reserve(tenants_.size());
  for (const auto& [tenant, state] : tenants_)
    slis.push_back(MakeSli(tenant, state, now_second));
  return slis;
}

bool SloTracker::AnyTenantBurning(TimePoint now) const {
  const int64_t now_second = ToSecond(now);
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [tenant, state] : tenants_)
    if (MakeSli(tenant, state, now_second).burning) return true;
  return false;
}

void SloTracker::ExportToRegistry(MetricsRegistry& registry,
                                  TimePoint now) const {
  for (const TenantSli& sli : Snapshot(now)) {
    const std::string label =
        StrFormat("{tenant=\"%s\"}", EscapeLabelValue(sli.tenant).c_str());
    registry.GetGauge("slo_fast_burn" + label).Set(sli.fast_burn);
    registry.GetGauge("slo_slow_burn" + label).Set(sli.slow_burn);
    registry.GetGauge("slo_fast_availability" + label)
        .Set(sli.fast_availability);
    registry.GetGauge("slo_slow_availability" + label)
        .Set(sli.slow_availability);
    registry.GetGauge("slo_burning" + label).Set(sli.burning ? 1.0 : 0.0);
  }
}

}  // namespace cascn::obs
