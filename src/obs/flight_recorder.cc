#include "obs/flight_recorder.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/string_util.h"

namespace cascn::obs {

namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 8;
  while (p < n) p <<= 1;
  return p;
}

// Minimal JSON string escape for the short tenant/session names; control
// characters become \u00XX so a hostile name cannot break the dump format.
std::string JsonEscape(std::string_view in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", static_cast<unsigned>(
                                          static_cast<unsigned char>(c)));
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string_view FlightOpName(FlightOp op) {
  switch (op) {
    case FlightOp::kUnknown: return "Unknown";
    case FlightOp::kCreate: return "Create";
    case FlightOp::kAppend: return "Append";
    case FlightOp::kPredict: return "Predict";
    case FlightOp::kClose: return "Close";
    case FlightOp::kRoute: return "Route";
  }
  return "Unknown";
}

FlightRecorder::FlightRecorder(size_t capacity)
    : slots_(RoundUpPow2(capacity)) {}

void FlightRecorder::Append(FlightRecord record) {
  const uint64_t seq_no = head_.fetch_add(1, std::memory_order_relaxed);
  record.seq_no = seq_no;
  Slot& slot = slots_[seq_no & (slots_.size() - 1)];
  uint64_t seq = slot.seq.load(std::memory_order_relaxed);
  // Odd = another writer owns this slot (the ring lapped a full revolution
  // while it was mid-write). Never wait on the hot path: drop and count.
  if ((seq & 1) != 0 ||
      !slot.seq.compare_exchange_strong(seq, seq + 1,
                                        std::memory_order_acquire,
                                        std::memory_order_relaxed)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  uint64_t words[kWords];
  std::memcpy(words, &record, sizeof(record));
  for (size_t i = 0; i < kWords; ++i)
    slot.words[i].store(words[i], std::memory_order_relaxed);
  slot.seq.store(seq + 2, std::memory_order_release);
}

std::vector<FlightRecord> FlightRecorder::Snapshot() const {
  std::vector<FlightRecord> records;
  records.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    const uint64_t before = slot.seq.load(std::memory_order_acquire);
    if (before == 0 || (before & 1) != 0) continue;  // empty or mid-write
    uint64_t words[kWords];
    for (size_t i = 0; i < kWords; ++i)
      words[i] = slot.words[i].load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != before) continue;  // torn
    FlightRecord record;
    std::memcpy(&record, words, sizeof(record));
    records.push_back(record);
  }
  std::sort(records.begin(), records.end(),
            [](const FlightRecord& a, const FlightRecord& b) {
              return a.seq_no < b.seq_no;
            });
  return records;
}

std::string FlightRecorder::ToJsonLines(std::string_view reason) const {
  const std::vector<FlightRecord> records = Snapshot();
  std::ostringstream out;
  out << StrFormat(
      "{\"event\": \"flight_dump\", \"reason\": \"%s\", \"records\": %zu, "
      "\"appended\": %llu, \"dropped\": %llu}\n",
      JsonEscape(reason).c_str(), records.size(),
      static_cast<unsigned long long>(total_appended()),
      static_cast<unsigned long long>(dropped()));
  for (const FlightRecord& record : records) {
    // Fixed-size name fields are NUL-padded; rehydrate as C strings.
    const std::string tenant = JsonEscape(record.tenant);
    const std::string session = JsonEscape(record.session);
    out << StrFormat(
        "{\"seq\": %llu, \"trace_id\": \"%llx\", \"tenant\": \"%s\", "
        "\"session\": \"%s\", \"shard\": %d, \"op\": \"%s\", "
        "\"status\": \"%s\", \"queue_wait_ns\": %llu, \"exec_ns\": %llu, "
        "\"faults\": %u}\n",
        static_cast<unsigned long long>(record.seq_no),
        static_cast<unsigned long long>(record.trace_id), tenant.c_str(),
        session.c_str(), static_cast<int>(record.shard_id),
        std::string(FlightOpName(record.op)).c_str(),
        std::string(StatusCodeToString(static_cast<StatusCode>(record.status)))
            .c_str(),
        static_cast<unsigned long long>(record.queue_wait_ns),
        static_cast<unsigned long long>(record.exec_ns),
        static_cast<unsigned>(record.fault_bits));
  }
  return out.str();
}

Status FlightRecorder::Dump(const std::string& path,
                            std::string_view reason) const {
  const std::string lines = ToJsonLines(reason);
  std::lock_guard<std::mutex> lock(dump_mutex_);
  std::FILE* file = std::fopen(path.c_str(), "a");
  if (file == nullptr)
    return Status::IoError("cannot open flight-recorder dump file: " + path);
  const size_t written = std::fwrite(lines.data(), 1, lines.size(), file);
  std::fclose(file);
  if (written != lines.size())
    return Status::IoError("short write to flight-recorder dump file: " +
                           path);
  return Status::OK();
}

void FlightRecorder::SetDumpPath(std::string path) {
  std::lock_guard<std::mutex> lock(dump_mutex_);
  dump_path_ = std::move(path);
}

std::string FlightRecorder::dump_path() const {
  std::lock_guard<std::mutex> lock(dump_mutex_);
  return dump_path_;
}

void FlightRecorder::TriggerDump(std::string_view reason) {
  const std::string path = dump_path();
  if (path.empty()) return;
  dumps_.fetch_add(1, std::memory_order_relaxed);
  // Best-effort by design: a failed dump must never turn an anomaly into a
  // second failure on the serving path.
  (void)Dump(path, reason);
}

}  // namespace cascn::obs
