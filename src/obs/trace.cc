#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/string_util.h"
#include "obs/metrics_registry.h"

namespace cascn::obs {

thread_local std::shared_ptr<Tracer::ThreadBuffer> Tracer::tls_buffer_;

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {
  const char* env = std::getenv("CASCN_TRACE");
  if (env != nullptr && env[0] != '\0' && std::string_view(env) != "0")
    enabled_.store(true, std::memory_order_relaxed);
}

Tracer& Tracer::Get() {
  static Tracer* tracer = new Tracer();  // leaked: outlives exiting threads
  return *tracer;
}

Tracer::ThreadBuffer& Tracer::LocalBuffer() {
  if (tls_buffer_ == nullptr) {
    auto buffer = std::make_shared<ThreadBuffer>();
    buffer->tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(buffers_mutex_);
      buffers_.push_back(buffer);
    }
    tls_buffer_ = std::move(buffer);
  }
  return *tls_buffer_;
}

void Tracer::Record(const TraceEvent& event) {
  ThreadBuffer& buffer = LocalBuffer();
  bool overwrote = false;
  {
    std::lock_guard<std::mutex> lock(buffer.mutex);
    if (buffer.ring.size() < kRingCapacity) {
      buffer.ring.push_back(event);
    } else {
      buffer.ring[buffer.next] = event;
      buffer.next = (buffer.next + 1) % kRingCapacity;
      buffer.wrapped = true;
      overwrote = true;
    }
  }
  if (overwrote) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    // Resolved lazily (not in the Tracer ctor) to avoid an initialization
    // cycle between the two leaked singletons; GetCounter is idempotent.
    MetricsRegistry::Get().GetCounter("trace_spans_dropped").Increment();
  }
}

void Tracer::RecordSpan(const char* name,
                        std::chrono::steady_clock::time_point start,
                        std::chrono::steady_clock::time_point end,
                        uint64_t trace_id, SpanFlow flow) {
  const bool record = enabled();
  const bool sample = sampling();
  if (!record && !sample) return;
  if (end < start) end = start;
  if (start < epoch_) start = epoch_;  // spans begun before tracer init
  const auto duration_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start);
  if (sample)
    RecordSample(name, static_cast<uint64_t>(duration_ns.count()));
  if (!record) return;
  const auto start_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(start - epoch_);
  Record(TraceEvent{name, static_cast<uint64_t>(start_ns.count()),
                    static_cast<uint64_t>(duration_ns.count()), trace_id,
                    flow});
}

void Tracer::PushOpenSpan(const char* name,
                          std::chrono::steady_clock::time_point start,
                          uint64_t trace_id) {
  ThreadBuffer& buffer = LocalBuffer();
  std::lock_guard<std::mutex> lock(buffer.mutex);
  buffer.open.push_back(OpenSpan{name, start, trace_id});
}

void Tracer::PopOpenSpan(const char* name,
                         std::chrono::steady_clock::time_point start,
                         uint64_t trace_id) {
  ThreadBuffer& buffer = LocalBuffer();
  std::lock_guard<std::mutex> lock(buffer.mutex);
  // RAII scoping makes this the back entry in practice; the backwards scan
  // keeps a concurrent Clear() or sampling toggle from ever popping a
  // different span's entry.
  for (auto it = buffer.open.rbegin(); it != buffer.open.rend(); ++it) {
    if (it->name == name && it->start == start &&
        it->trace_id == trace_id) {
      buffer.open.erase(std::next(it).base());
      return;
    }
  }
}

void Tracer::RecordSample(const char* name, uint64_t duration_ns) {
  const uint64_t duration_us = duration_ns / 1000;
  std::lock_guard<std::mutex> lock(samples_mutex_);
  auto it = samples_.find(name);
  if (it == samples_.end()) {
    if (samples_.size() >= kMaxSampledNames) {
      it = samples_.find("_other");
      if (it == samples_.end())
        it = samples_
                 .emplace("_other", std::make_unique<Histogram>())
                 .first;
    } else {
      it = samples_.emplace(name, std::make_unique<Histogram>()).first;
    }
  }
  it->second->Record(duration_us);
}

std::vector<OpenSpanInfo> Tracer::OpenSpans() const {
  const auto now = std::chrono::steady_clock::now();
  std::vector<OpenSpanInfo> spans;
  {
    std::lock_guard<std::mutex> registry_lock(buffers_mutex_);
    for (const auto& buffer : buffers_) {
      std::lock_guard<std::mutex> lock(buffer->mutex);
      for (const OpenSpan& open : buffer->open) {
        OpenSpanInfo info;
        info.name = open.name;
        info.tid = buffer->tid;
        info.trace_id = open.trace_id;
        info.age_ns = open.start < now
                          ? static_cast<uint64_t>(
                                std::chrono::duration_cast<
                                    std::chrono::nanoseconds>(now -
                                                              open.start)
                                    .count())
                          : 0;
        spans.push_back(info);
      }
    }
  }
  std::sort(spans.begin(), spans.end(),
            [](const OpenSpanInfo& a, const OpenSpanInfo& b) {
              return a.age_ns > b.age_ns;
            });
  return spans;
}

std::vector<SpanStats> Tracer::SpanStatsSnapshot() const {
  std::vector<SpanStats> stats;
  std::lock_guard<std::mutex> lock(samples_mutex_);
  for (const auto& [name, histogram] : samples_) {
    const Histogram::Snapshot snap = histogram->TakeSnapshot();
    SpanStats s;
    s.name = name;
    s.count = snap.count;
    s.mean_us = snap.mean;
    s.p50_us = snap.Percentile(0.50);
    s.p95_us = snap.Percentile(0.95);
    s.max_us = snap.max;
    stats.push_back(std::move(s));
  }
  return stats;
}

std::string Tracer::OpenSpansJson() const {
  std::ostringstream out;
  out << "[";
  bool first = true;
  for (const OpenSpanInfo& span : OpenSpans()) {
    if (!first) out << ",";
    first = false;
    out << StrFormat(
        "\n{\"name\": \"%s\", \"tid\": %d, \"trace_id\": \"%llx\", "
        "\"age_us\": %.1f}",
        span.name, span.tid,
        static_cast<unsigned long long>(span.trace_id),
        static_cast<double>(span.age_ns) / 1000.0);
  }
  out << "\n]";
  return out.str();
}

std::string Tracer::TracezJson() const {
  std::ostringstream out;
  out << StrFormat(
      "{\"sampling\": %s, \"spans_dropped\": %llu, \"span_stats\": [",
      sampling() ? "true" : "false",
      static_cast<unsigned long long>(dropped_count()));
  bool first = true;
  for (const SpanStats& s : SpanStatsSnapshot()) {
    if (!first) out << ",";
    first = false;
    out << StrFormat(
        "\n{\"name\": \"%s\", \"count\": %llu, \"mean_us\": %.1f, "
        "\"p50_us\": %.1f, \"p95_us\": %.1f, \"max_us\": %llu}",
        s.name.c_str(), static_cast<unsigned long long>(s.count), s.mean_us,
        s.p50_us, s.p95_us, static_cast<unsigned long long>(s.max_us));
  }
  out << "\n], \"open_spans\": " << OpenSpansJson() << "}\n";
  return out.str();
}

void Tracer::Clear() {
  {
    std::lock_guard<std::mutex> registry_lock(buffers_mutex_);
    for (const auto& buffer : buffers_) {
      std::lock_guard<std::mutex> lock(buffer->mutex);
      buffer->ring.clear();
      buffer->next = 0;
      buffer->wrapped = false;
      // The open stacks are NOT cleared: entries belong to live ScopedSpan
      // objects that will remove themselves on destruction.
    }
  }
  {
    std::lock_guard<std::mutex> lock(samples_mutex_);
    samples_.clear();
  }
  dropped_.store(0, std::memory_order_relaxed);
}

size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> registry_lock(buffers_mutex_);
  size_t total = 0;
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> lock(buffer->mutex);
    total += buffer->ring.size();
  }
  return total;
}

std::string Tracer::ToChromeTraceJson() const {
  // Snapshot every buffer first so serialization happens unlocked.
  struct Flat {
    TraceEvent event;
    int tid;
  };
  std::vector<Flat> events;
  {
    std::lock_guard<std::mutex> registry_lock(buffers_mutex_);
    for (const auto& buffer : buffers_) {
      std::lock_guard<std::mutex> lock(buffer->mutex);
      for (const TraceEvent& event : buffer->ring)
        events.push_back({event, buffer->tid});
    }
  }
  const uint64_t dropped = dropped_.load(std::memory_order_relaxed);
  std::sort(events.begin(), events.end(),
            [](const Flat& a, const Flat& b) {
              return a.event.start_ns < b.event.start_ns;
            });

  std::ostringstream out;
  out << StrFormat(
      "{\"displayTimeUnit\": \"ms\", \"spans_dropped\": %llu, "
      "\"traceEvents\": [",
      static_cast<unsigned long long>(dropped));
  bool first = true;
  for (const Flat& flat : events) {
    if (!first) out << ",";
    first = false;
    const double ts_us = static_cast<double>(flat.event.start_ns) / 1000.0;
    const double dur_us =
        static_cast<double>(flat.event.duration_ns) / 1000.0;
    // Chrome trace "complete" events; ts/dur are microseconds (fractional
    // keeps the original nanosecond precision). Request-scoped spans carry
    // the trace id as an arg for selection/search in the viewer.
    if (flat.event.trace_id != 0) {
      out << StrFormat(
          "\n{\"name\": \"%s\", \"cat\": \"cascn\", \"ph\": \"X\", "
          "\"pid\": 1, \"tid\": %d, \"ts\": %.3f, \"dur\": %.3f, "
          "\"args\": {\"trace_id\": \"%llx\"}}",
          flat.event.name, flat.tid, ts_us, dur_us,
          static_cast<unsigned long long>(flat.event.trace_id));
    } else {
      out << StrFormat(
          "\n{\"name\": \"%s\", \"cat\": \"cascn\", \"ph\": \"X\", "
          "\"pid\": 1, \"tid\": %d, \"ts\": %.3f, \"dur\": %.3f}",
          flat.event.name, flat.tid, ts_us, dur_us);
    }
    // Matching flow event: same name/tid, timestamp inside the span so the
    // viewer binds the arrow to this slice. "s" starts the chain on the
    // submitting thread, "t" steps through intermediate hops, "f" (with
    // bp:"e") terminates it on the executing thread; all keyed by trace id.
    if (flat.event.trace_id != 0 && flat.event.flow != SpanFlow::kNone) {
      const char* ph = flat.event.flow == SpanFlow::kOut   ? "s"
                       : flat.event.flow == SpanFlow::kStep ? "t"
                                                            : "f";
      out << StrFormat(
          "\n,{\"name\": \"request\", \"cat\": \"cascn.flow\", "
          "\"ph\": \"%s\", \"id\": \"%llx\", \"pid\": 1, \"tid\": %d, "
          "\"ts\": %.3f%s}",
          ph, static_cast<unsigned long long>(flat.event.trace_id),
          flat.tid, ts_us,
          flat.event.flow == SpanFlow::kIn ? ", \"bp\": \"e\"" : "");
    }
  }
  out << "\n]}\n";
  return out.str();
}

Status Tracer::WriteChromeTrace(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr)
    return Status::IoError("cannot open trace output file: " + path);
  const std::string json = ToChromeTraceJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), file);
  std::fclose(file);
  if (written != json.size())
    return Status::IoError("short write to trace output file: " + path);
  return Status::OK();
}

}  // namespace cascn::obs
