#include "obs/telemetry.h"

#include <cmath>

#include "common/string_util.h"

namespace cascn::obs {

namespace {

std::string EscapeJson(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void JsonObjectBuilder::AddKey(std::string_view key) {
  if (!body_.empty()) body_ += ", ";
  body_ += "\"";
  body_ += EscapeJson(key);
  body_ += "\": ";
}

JsonObjectBuilder& JsonObjectBuilder::Add(std::string_view key,
                                          double value) {
  AddKey(key);
  // JSON has no NaN/Inf literals; null keeps the line parseable.
  body_ += std::isfinite(value) ? StrFormat("%.6g", value) : "null";
  return *this;
}

JsonObjectBuilder& JsonObjectBuilder::Add(std::string_view key,
                                          int64_t value) {
  AddKey(key);
  body_ += StrFormat("%lld", static_cast<long long>(value));
  return *this;
}

JsonObjectBuilder& JsonObjectBuilder::Add(std::string_view key,
                                          uint64_t value) {
  AddKey(key);
  body_ += StrFormat("%llu", static_cast<unsigned long long>(value));
  return *this;
}

JsonObjectBuilder& JsonObjectBuilder::Add(std::string_view key, bool value) {
  AddKey(key);
  body_ += value ? "true" : "false";
  return *this;
}

JsonObjectBuilder& JsonObjectBuilder::Add(std::string_view key,
                                          std::string_view value) {
  AddKey(key);
  body_ += "\"";
  body_ += EscapeJson(value);
  body_ += "\"";
  return *this;
}

std::string JsonObjectBuilder::Build() const { return "{" + body_ + "}"; }

void VectorTelemetrySink::Emit(const std::string& json_object) {
  std::lock_guard<std::mutex> lock(mutex_);
  lines_.push_back(json_object);
}

std::vector<std::string> VectorTelemetrySink::lines() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lines_;
}

Result<std::unique_ptr<FileTelemetrySink>> FileTelemetrySink::Open(
    const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "a");
  if (file == nullptr)
    return Status::IoError("cannot open telemetry file: " + path);
  return std::unique_ptr<FileTelemetrySink>(new FileTelemetrySink(file));
}

FileTelemetrySink::~FileTelemetrySink() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::fclose(file_);
}

void FileTelemetrySink::Emit(const std::string& json_object) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::fprintf(file_, "%s\n", json_object.c_str());
  std::fflush(file_);
}

void FileTelemetrySink::Flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::fflush(file_);
}

}  // namespace cascn::obs
