// Streaming telemetry: one flat JSON object per event, emitted as JSON
// lines ("jsonl") through a sink. The trainer streams one record per epoch
// (timings, gradient norm, learning rate); anything that wants a durable,
// machine-readable progress log can use the same machinery.
//
//   auto sink = obs::FileTelemetrySink::Open("telemetry.jsonl").value();
//   options.telemetry = sink.get();
//   ...
//   sink->Emit(obs::JsonObjectBuilder()
//                  .Add("event", "epoch")
//                  .Add("loss", 0.42)
//                  .Build());

#ifndef CASCN_OBS_TELEMETRY_H_
#define CASCN_OBS_TELEMETRY_H_

#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace cascn::obs {

/// Builds one flat JSON object incrementally. Keys are emitted in insertion
/// order; string values are escaped.
class JsonObjectBuilder {
 public:
  JsonObjectBuilder& Add(std::string_view key, double value);
  JsonObjectBuilder& Add(std::string_view key, int64_t value);
  JsonObjectBuilder& Add(std::string_view key, uint64_t value);
  JsonObjectBuilder& Add(std::string_view key, int value) {
    return Add(key, static_cast<int64_t>(value));
  }
  JsonObjectBuilder& Add(std::string_view key, bool value);
  JsonObjectBuilder& Add(std::string_view key, std::string_view value);
  JsonObjectBuilder& Add(std::string_view key, const char* value) {
    return Add(key, std::string_view(value));
  }

  /// The finished object, e.g. `{"a": 1, "b": "x"}`.
  std::string Build() const;

 private:
  void AddKey(std::string_view key);
  std::string body_;
};

/// Receives one JSON object per call. Implementations must be thread-safe:
/// several components may share one sink.
class TelemetrySink {
 public:
  virtual ~TelemetrySink() = default;
  /// `json_object` is a complete single-line JSON object (no trailing
  /// newline); the sink supplies record framing.
  virtual void Emit(const std::string& json_object) = 0;
  /// Forces buffered records to their destination (obs::ShutdownDump calls
  /// this on exit). Default: no-op for sinks that are always durable.
  virtual void Flush() {}
};

/// Collects records in memory — tests and in-process consumers.
class VectorTelemetrySink : public TelemetrySink {
 public:
  void Emit(const std::string& json_object) override;
  std::vector<std::string> lines() const;

 private:
  mutable std::mutex mutex_;
  std::vector<std::string> lines_;
};

/// Appends each record as one line to a file (JSON-lines). Flushes per
/// record so a crash loses at most the record being written.
class FileTelemetrySink : public TelemetrySink {
 public:
  static Result<std::unique_ptr<FileTelemetrySink>> Open(
      const std::string& path);
  ~FileTelemetrySink() override;

  void Emit(const std::string& json_object) override;
  void Flush() override;

 private:
  explicit FileTelemetrySink(std::FILE* file) : file_(file) {}

  std::mutex mutex_;
  std::FILE* file_;
};

}  // namespace cascn::obs

#endif  // CASCN_OBS_TELEMETRY_H_
