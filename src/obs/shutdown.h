// ShutdownDump: one exit-time flush for every observability surface.
//
// Binaries used to write their trace/metrics files ad hoc in the middle of
// main(), which silently dropped whatever was recorded afterwards (e.g.
// spans emitted by a PredictionService destructor running after the trace
// was already serialized). Instead, destroy everything that still records,
// then make a single call:
//
//   obs::ShutdownDumpOptions dump;
//   dump.trace_path = trace_out;      // "" skips
//   dump.metrics_path = metrics_out;  // "" skips
//   dump.telemetry = {sink.get()};
//   CASCN_CHECK(obs::ShutdownDump(dump).ok());
//
// Flush order: telemetry sinks first (cheapest, per-record durability),
// then the profiler (gauges bridged into the registry so the metrics dump
// carries them, table printed when CASCN_PROFILE is active), then the
// metrics JSON, then the Chrome trace — so each later artifact reflects
// everything the earlier steps produced.

#ifndef CASCN_OBS_SHUTDOWN_H_
#define CASCN_OBS_SHUTDOWN_H_

#include <cstdio>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics_registry.h"
#include "obs/telemetry.h"

namespace cascn::obs {

struct ShutdownDumpOptions {
  /// Chrome trace-event output; empty skips.
  std::string trace_path;
  /// Registry JSON snapshot output; empty skips.
  std::string metrics_path;
  /// Registry to snapshot; null uses the process-global registry.
  MetricsRegistry* registry = nullptr;
  /// Written to `metrics_path` instead of snapshotting `registry` when
  /// non-empty — for registries that die before shutdown (e.g. a
  /// PredictionService-local registry captured just before destruction).
  std::string metrics_json_override;
  /// Sinks to Flush(); null entries are ignored.
  std::vector<TelemetrySink*> telemetry;
  /// Destination for the per-op profile table when profiling is active;
  /// null suppresses the table (gauges are still exported).
  std::FILE* profile_stream = stderr;
};

/// Flushes everything per the options above. Returns the first error;
/// later stages still run so one bad path does not drop the rest.
Status ShutdownDump(const ShutdownDumpOptions& options = {});

}  // namespace cascn::obs

#endif  // CASCN_OBS_SHUTDOWN_H_
