#include "obs/watchdog.h"

#include <cstdio>
#include <sstream>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace cascn::obs {

namespace {

// File-name-safe rendering of a target name.
std::string SanitizeName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                    c == '.';
    if (!ok) c = '_';
  }
  return out;
}

std::string JsonEscape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", static_cast<unsigned>(
                                          static_cast<unsigned char>(c)));
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

Watchdog::Watchdog(WatchdogOptions options) : options_(std::move(options)) {}

Watchdog::~Watchdog() { Stop(); }

void Watchdog::Watch(WatchTarget target) {
  CASCN_CHECK(target.progress != nullptr)
      << "watch target '" << target.name << "' needs a progress function";
  TargetState state;
  state.target = std::move(target);
  state.last_progress = state.target.progress();
  state.last_change = options_.clock ? options_.clock()
                                     : std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mutex_);
  targets_.push_back(std::move(state));
}

void Watchdog::Start() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (running_) return;
    running_ = true;
    stop_requested_ = false;
  }
  // Stall dumps read the tracer's open-span table; without sampling the
  // table is empty and a dump says nothing about WHAT is stuck.
  Tracer::Get().EnableSampling();
  thread_ = std::thread([this] { Loop(); });
}

void Watchdog::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) return;
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  std::lock_guard<std::mutex> lock(mutex_);
  running_ = false;
}

void Watchdog::Loop() {
  const auto period = std::chrono::duration<double, std::milli>(
      options_.poll_ms > 0.0 ? options_.poll_ms : 50.0);
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_requested_) {
    if (stop_cv_.wait_for(
            lock,
            std::chrono::duration_cast<std::chrono::milliseconds>(period),
            [this] { return stop_requested_; }))
      break;
    lock.unlock();
    PollOnce();
    lock.lock();
  }
}

void Watchdog::PollOnce() {
  const auto now = options_.clock ? options_.clock()
                                  : std::chrono::steady_clock::now();
  // Detection runs under the mutex (progress/busy are cheap atomic reads by
  // contract); reactions (dump + hooks) run unlocked so a slow on_stall
  // never blocks Watch()/StatusJson(). Reaction data is COPIED out — a
  // concurrent Watch() may reallocate targets_, so pointers into it must
  // not cross the unlock.
  struct Reaction {
    std::string name;
    uint64_t last_progress = 0;
    std::function<void()> hook;
  };
  std::vector<Reaction> fired;
  std::vector<Reaction> recovered;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (TargetState& state : targets_) {
      const uint64_t progress = state.target.progress();
      const bool busy = state.target.busy ? state.target.busy() : false;
      if (progress != state.last_progress) {
        state.last_progress = progress;
        state.last_change = now;
        if (state.stalled) {
          state.stalled = false;
          recoveries_.fetch_add(1, std::memory_order_relaxed);
          recovered.push_back(
              {state.target.name, progress, state.target.on_recover});
        }
      } else if (!busy) {
        // Idle: nothing to do is not a stall. Keep the window fresh so a
        // later busy period is measured from its own start.
        if (!state.stalled) state.last_change = now;
      } else if (!state.stalled) {
        const double quiet_ms =
            std::chrono::duration<double, std::milli>(now -
                                                      state.last_change)
                .count();
        if (quiet_ms > options_.stall_ms) {
          state.stalled = true;
          ++state.stalls;
          stalls_.fetch_add(1, std::memory_order_relaxed);
          fired.push_back(
              {state.target.name, progress, state.target.on_stall});
        }
      }
    }
  }
  for (const Reaction& reaction : fired) {
    MetricsRegistry::Get().GetCounter("watchdog_stalls_total").Increment();
    CASCN_LOG(WARNING) << "watchdog: target '" << reaction.name
                    << "' stalled (no progress for > " << options_.stall_ms
                    << " ms with work pending)";
    DumpStall(reaction.name, reaction.last_progress);
    if (reaction.hook) reaction.hook();
  }
  for (const Reaction& reaction : recovered) {
    MetricsRegistry::Get()
        .GetCounter("watchdog_recoveries_total")
        .Increment();
    CASCN_LOG(INFO) << "watchdog: target '" << reaction.name
                    << "' recovered";
    if (reaction.hook) reaction.hook();
  }
}

void Watchdog::DumpStall(const std::string& name, uint64_t last_progress) {
  if (options_.anomaly_dir.empty()) return;
  const uint64_t seq = dump_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::string path = StrFormat(
      "%s/watchdog_%s.%05llu.json", options_.anomaly_dir.c_str(),
      SanitizeName(name).c_str(), static_cast<unsigned long long>(seq));
  std::ostringstream out;
  out << StrFormat(
      "{\"event\": \"watchdog_stall\", \"target\": \"%s\", "
      "\"stall_ms\": %.1f, \"last_progress\": %llu, \"open_spans\": ",
      JsonEscape(name).c_str(), options_.stall_ms,
      static_cast<unsigned long long>(last_progress));
  out << Tracer::Get().OpenSpansJson() << "}\n";
  const std::string body = out.str();
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    CASCN_LOG(WARNING) << "watchdog: cannot write stall dump " << path;
    return;
  }
  std::fwrite(body.data(), 1, body.size(), file);
  std::fclose(file);
  std::lock_guard<std::mutex> lock(mutex_);
  last_dump_path_ = path;
}

std::string Watchdog::last_dump_path() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_dump_path_;
}

std::string Watchdog::StatusJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  out << "[";
  bool first = true;
  for (const TargetState& state : targets_) {
    if (!first) out << ",";
    first = false;
    out << StrFormat(
        "\n{\"target\": \"%s\", \"stalled\": %s, \"stalls\": %llu, "
        "\"last_progress\": %llu}",
        JsonEscape(state.target.name).c_str(),
        state.stalled ? "true" : "false",
        static_cast<unsigned long long>(state.stalls),
        static_cast<unsigned long long>(state.last_progress));
  }
  out << "\n]";
  return out.str();
}

}  // namespace cascn::obs
