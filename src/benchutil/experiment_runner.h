// Shared plumbing for the bench binaries: synthetic dataset construction
// (Weibo-like and HEP-PH-like, matching the paper's observation windows),
// model construction for every Table III/IV method, and the train+evaluate
// driver. Scale the workload with the CASCN_BENCH_SCALE environment
// variable (default 1.0; e.g. 2.0 doubles cascades and epochs for
// higher-fidelity runs).

#ifndef CASCN_BENCHUTIL_EXPERIMENT_RUNNER_H_
#define CASCN_BENCHUTIL_EXPERIMENT_RUNNER_H_

#include <memory>
#include <string>
#include <vector>

#include "core/cascn_model.h"
#include "core/cascn_path_model.h"
#include "core/config.h"
#include "core/trainer.h"
#include "data/cascade_generator.h"
#include "data/dataset.h"

namespace cascn::bench {

/// Workload multiplier from CASCN_BENCH_SCALE (clamped to [0.1, 10]).
double BenchScale();

/// The two synthetic corpora used by every experiment.
struct SyntheticData {
  GeneratorConfig weibo_config;
  GeneratorConfig citation_config;
  std::vector<Cascade> weibo;
  std::vector<Cascade> citation;
};

/// Generates both corpora deterministically, sized by `scale`.
SyntheticData MakeSyntheticData(double scale);

/// Observation windows matching the paper: Weibo 1/2/3 hours (minutes),
/// HEP-PH 3/5/7 "years" (months).
std::vector<double> WeiboWindows();
std::vector<double> CitationWindows();
std::string WindowLabel(bool weibo, double window);

/// Builds the labelled dataset for one corpus/window, capping split sizes
/// so single-CPU runs stay tractable (train <= max_train, val/test <=
/// max_train/2 each; 0 disables the cap).
Result<CascadeDataset> MakeDataset(const std::vector<Cascade>& cascades,
                                   bool weibo, double window,
                                   int max_train = 0);

/// Every method of Tables III and IV.
enum class ModelKind {
  kFeatureLinear,
  kFeatureDeep,
  kLis,
  kNode2Vec,
  kDeepCas,
  kTopoLstm,
  kDeepHawkes,
  kCascn,
  kCascnGru,
  kCascnPath,
  kCascnGl,
  kCascnUndirected,
  kCascnNoTime,
};

std::string ModelKindName(ModelKind kind);

/// Table III baselines + CasCN, in the paper's row order.
std::vector<ModelKind> Table3Models();
/// Table IV: CasCN and its variants, in the paper's row order.
std::vector<ModelKind> Table4Models();

/// Per-run knobs.
struct RunOptions {
  TrainerOptions trainer;
  int user_universe = 2000;
  uint64_t seed = 42;
  /// Trained models are run with this many seeds and their test MSLE
  /// averaged (single training runs on small synthetic splits are noisy).
  int num_seeds = 2;
  /// Base CasCN configuration; the variant field is overridden per kind.
  CascnConfig cascn;
};

/// Trainer/model defaults sized by `scale`.
RunOptions DefaultRunOptions(double scale, int user_universe);

/// Adjusts the CasCN configuration to the dataset: Weibo cascades are
/// larger (wider hidden state); citation cascades are tiny (small padded
/// graph, short snapshot sequences).
void TuneForDataset(RunOptions& options, bool weibo);

/// Result of one table cell.
struct RunOutcome {
  std::string model;
  double test_msle = 0.0;
  TrainResult train;
};

/// Builds, trains (with any model-specific pre-fit), and evaluates one
/// model on one dataset.
RunOutcome RunModel(ModelKind kind, const CascadeDataset& dataset,
                    const RunOptions& options);

/// Builds a trained CasCN with an explicit config (Tables IV/V, Figs 7-9).
struct CascnRunOutcome {
  double test_msle = 0.0;
  TrainResult train;
  std::unique_ptr<CascnModel> model;
};
CascnRunOutcome RunCascn(const CascnConfig& config,
                         const CascadeDataset& dataset,
                         const TrainerOptions& trainer);

/// Mean test MSLE of CasCN over `num_seeds` independent trainings
/// (Tables IV/V cells).
double AveragedCascnMsle(const CascnConfig& config,
                         const CascadeDataset& dataset,
                         const TrainerOptions& trainer, int num_seeds);

}  // namespace cascn::bench

#endif  // CASCN_BENCHUTIL_EXPERIMENT_RUNNER_H_
