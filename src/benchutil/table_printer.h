// Aligned-column table output for the benchmark binaries; renders the same
// row/column structure as the paper's tables.

#ifndef CASCN_BENCHUTIL_TABLE_PRINTER_H_
#define CASCN_BENCHUTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace cascn {

/// Collects rows of string cells and prints them with aligned columns.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with fixed precision.
  static std::string Cell(double value, int precision = 3);

  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cascn

#endif  // CASCN_BENCHUTIL_TABLE_PRINTER_H_
