#include "benchutil/experiment_runner.h"

#include <algorithm>
#include <cstdlib>

#include "baselines/deepcas_model.h"
#include "baselines/deephawkes_model.h"
#include "baselines/feature_deep.h"
#include "baselines/feature_linear.h"
#include "baselines/lis_model.h"
#include "baselines/node2vec_model.h"
#include "baselines/topolstm_model.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace cascn::bench {

namespace {
/// Observed-size bound shared by dataset filtering and the CasCN padded
/// size (see MakeDataset / DefaultRunOptions).
constexpr int kMaxObservedNodes = 48;
}  // namespace

double BenchScale() {
  const char* env = std::getenv("CASCN_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const auto parsed = ParseDouble(env);
  if (!parsed.ok()) return 1.0;
  return std::clamp(*parsed, 0.1, 10.0);
}

SyntheticData MakeSyntheticData(double scale) {
  SyntheticData data;
  data.weibo_config = WeiboLikeConfig();
  data.weibo_config.num_cascades =
      static_cast<int>(data.weibo_config.num_cascades * scale);
  data.citation_config = CitationLikeConfig();
  // Citation cascades are small and pass the observation filter less often;
  // a larger corpus keeps the HEP-PH splits comparable to the Weibo ones.
  data.citation_config.num_cascades =
      static_cast<int>(2 * data.citation_config.num_cascades * scale);
  Rng weibo_rng(20190411);
  data.weibo = GenerateCascades(data.weibo_config, weibo_rng);
  Rng citation_rng(19930104);
  data.citation = GenerateCascades(data.citation_config, citation_rng);
  return data;
}

std::vector<double> WeiboWindows() { return {60.0, 120.0, 180.0}; }
std::vector<double> CitationWindows() { return {36.0, 60.0, 84.0}; }

std::string WindowLabel(bool weibo, double window) {
  if (weibo) {
    const int hours = static_cast<int>(window / 60.0 + 0.5);
    return StrFormat("%d hour%s", hours, hours == 1 ? "" : "s");
  }
  const int years = static_cast<int>(window / 12.0 + 0.5);
  return StrFormat("%d years", years);
}

Result<CascadeDataset> MakeDataset(const std::vector<Cascade>& cascades,
                                   bool weibo, double window, int max_train) {
  DatasetOptions opts;
  opts.observation_window = window;
  opts.min_observed_size = weibo ? 10 : 3;
  // All models compete on cascades whose observed part fits the padded
  // graph filters (the reference implementation bounds cascades the same
  // way), so no model sees nodes another must truncate.
  opts.max_observed_size = kMaxObservedNodes;
  CASCN_ASSIGN_OR_RETURN(CascadeDataset dataset,
                         BuildDataset(cascades, opts));
  if (max_train > 0) {
    const size_t eval_cap = static_cast<size_t>(std::max(8, max_train / 2));
    if (dataset.train.size() > static_cast<size_t>(max_train))
      dataset.train.resize(max_train);
    if (dataset.validation.size() > eval_cap)
      dataset.validation.resize(eval_cap);
    if (dataset.test.size() > eval_cap) dataset.test.resize(eval_cap);
  }
  return dataset;
}

std::string ModelKindName(ModelKind kind) {
  switch (kind) {
    case ModelKind::kFeatureLinear:
      return "Features-linear";
    case ModelKind::kFeatureDeep:
      return "Features-deep";
    case ModelKind::kLis:
      return "LIS";
    case ModelKind::kNode2Vec:
      return "Node2Vec";
    case ModelKind::kDeepCas:
      return "DeepCas";
    case ModelKind::kTopoLstm:
      return "Topo-LSTM";
    case ModelKind::kDeepHawkes:
      return "DeepHawkes";
    case ModelKind::kCascn:
      return "CasCN";
    case ModelKind::kCascnGru:
      return "CasCN-GRU";
    case ModelKind::kCascnPath:
      return "CasCN-Path";
    case ModelKind::kCascnGl:
      return "CasCN-GL";
    case ModelKind::kCascnUndirected:
      return "CasCN-Undirected";
    case ModelKind::kCascnNoTime:
      return "CasCN-Time";
  }
  return "?";
}

std::vector<ModelKind> Table3Models() {
  return {ModelKind::kFeatureDeep, ModelKind::kFeatureLinear,
          ModelKind::kLis,         ModelKind::kNode2Vec,
          ModelKind::kDeepCas,     ModelKind::kTopoLstm,
          ModelKind::kDeepHawkes,  ModelKind::kCascn};
}

std::vector<ModelKind> Table4Models() {
  return {ModelKind::kCascn,   ModelKind::kCascnGru,
          ModelKind::kCascnPath, ModelKind::kCascnGl,
          ModelKind::kCascnUndirected, ModelKind::kCascnNoTime};
}

RunOptions DefaultRunOptions(double scale, int user_universe) {
  RunOptions opts;
  opts.user_universe = user_universe;
  opts.trainer.max_epochs =
      std::clamp(static_cast<int>(36 * scale), 6, 120);
  opts.trainer.batch_size = 16;
  opts.trainer.learning_rate = 5e-3;
  opts.trainer.patience = 7;
  opts.cascn.padded_size = kMaxObservedNodes;
  opts.cascn.hidden_dim = 12;
  opts.cascn.cheb_order = 2;
  opts.cascn.max_sequence_length = 12;
  return opts;
}

void TuneForDataset(RunOptions& options, bool weibo) {
  if (weibo) {
    options.cascn.hidden_dim = 16;
  } else {
    options.cascn.padded_size = 24;
    options.cascn.max_sequence_length = 8;
  }
}

namespace {

CascnVariant VariantFor(ModelKind kind) {
  switch (kind) {
    case ModelKind::kCascnGru:
      return CascnVariant::kGru;
    case ModelKind::kCascnGl:
      return CascnVariant::kGcnLstm;
    case ModelKind::kCascnUndirected:
      return CascnVariant::kUndirected;
    case ModelKind::kCascnNoTime:
      return CascnVariant::kNoTimeDecay;
    default:
      return CascnVariant::kDefault;
  }
}

}  // namespace

namespace {

RunOutcome RunModelOnce(ModelKind kind, const CascadeDataset& dataset,
                        const RunOptions& options) {
  RunOutcome outcome;
  outcome.model = ModelKindName(kind);

  switch (kind) {
    case ModelKind::kFeatureLinear: {
      FeatureLinearModel model;
      const Status st = model.Fit(dataset);
      CASCN_CHECK(st.ok()) << "ridge fit failed: " << st.ToString();
      outcome.test_msle = EvaluateMsle(model, dataset.test);
      return outcome;
    }
    case ModelKind::kFeatureDeep: {
      FeatureDeepModel::Config config;
      config.seed = options.seed;
      FeatureDeepModel model(config);
      model.PrepareScaler(dataset.train);
      outcome.train = TrainRegressor(model, dataset, options.trainer);
      outcome.test_msle = EvaluateMsle(model, dataset.test);
      return outcome;
    }
    case ModelKind::kLis: {
      LisModel::Config config;
      config.user_universe = options.user_universe;
      config.seed = options.seed;
      LisModel model(config);
      outcome.train = TrainRegressor(model, dataset, options.trainer);
      outcome.test_msle = EvaluateMsle(model, dataset.test);
      return outcome;
    }
    case ModelKind::kNode2Vec: {
      Node2VecModel::Config config;
      config.user_universe = options.user_universe;
      config.seed = options.seed;
      Node2VecModel model(config);
      model.PretrainEmbeddings(dataset.train);
      outcome.train = TrainRegressor(model, dataset, options.trainer);
      outcome.test_msle = EvaluateMsle(model, dataset.test);
      return outcome;
    }
    case ModelKind::kDeepCas: {
      DeepCasModel::Config config;
      config.user_universe = options.user_universe;
      config.seed = options.seed;
      DeepCasModel model(config);
      outcome.train = TrainRegressor(model, dataset, options.trainer);
      outcome.test_msle = EvaluateMsle(model, dataset.test);
      return outcome;
    }
    case ModelKind::kTopoLstm: {
      TopoLstmModel::Config config;
      config.user_universe = options.user_universe;
      config.seed = options.seed;
      TopoLstmModel model(config);
      outcome.train = TrainRegressor(model, dataset, options.trainer);
      outcome.test_msle = EvaluateMsle(model, dataset.test);
      return outcome;
    }
    case ModelKind::kDeepHawkes: {
      DeepHawkesModel::Config config;
      config.user_universe = options.user_universe;
      config.seed = options.seed;
      DeepHawkesModel model(config);
      outcome.train = TrainRegressor(model, dataset, options.trainer);
      outcome.test_msle = EvaluateMsle(model, dataset.test);
      return outcome;
    }
    case ModelKind::kCascnPath: {
      CascnPathConfig config;
      config.user_universe = options.user_universe;
      config.seed = options.seed;
      CascnPathModel model(config);
      outcome.train = TrainRegressor(model, dataset, options.trainer);
      outcome.test_msle = EvaluateMsle(model, dataset.test);
      return outcome;
    }
    default: {
      CascnConfig config = options.cascn;
      config.variant = VariantFor(kind);
      config.seed = options.seed;
      CascnRunOutcome run = RunCascn(config, dataset, options.trainer);
      outcome.test_msle = run.test_msle;
      outcome.train = std::move(run.train);
      return outcome;
    }
  }
}

}  // namespace

RunOutcome RunModel(ModelKind kind, const CascadeDataset& dataset,
                    const RunOptions& options) {
  const int seeds =
      kind == ModelKind::kFeatureLinear ? 1 : std::max(1, options.num_seeds);
  RunOutcome first;
  double total = 0;
  for (int s = 0; s < seeds; ++s) {
    RunOptions per_seed = options;
    per_seed.seed = options.seed + static_cast<uint64_t>(s);
    per_seed.trainer.seed = options.trainer.seed + static_cast<uint64_t>(s);
    RunOutcome outcome = RunModelOnce(kind, dataset, per_seed);
    total += outcome.test_msle;
    if (s == 0) first = std::move(outcome);
  }
  first.test_msle = total / seeds;
  return first;
}

double AveragedCascnMsle(const CascnConfig& config,
                         const CascadeDataset& dataset,
                         const TrainerOptions& trainer, int num_seeds) {
  double total = 0;
  const int seeds = std::max(1, num_seeds);
  for (int s = 0; s < seeds; ++s) {
    CascnConfig per_seed = config;
    per_seed.seed = config.seed + static_cast<uint64_t>(s);
    TrainerOptions t = trainer;
    t.seed = trainer.seed + static_cast<uint64_t>(s);
    total += RunCascn(per_seed, dataset, t).test_msle;
  }
  return total / seeds;
}

CascnRunOutcome RunCascn(const CascnConfig& config,
                         const CascadeDataset& dataset,
                         const TrainerOptions& trainer) {
  CascnRunOutcome outcome;
  outcome.model = std::make_unique<CascnModel>(config);
  outcome.train = TrainRegressor(*outcome.model, dataset, trainer);
  outcome.test_msle = EvaluateMsle(*outcome.model, dataset.test);
  return outcome;
}

}  // namespace cascn::bench
