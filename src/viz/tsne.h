// Exact t-SNE (van der Maaten & Hinton 2008) for the Fig. 9 feature
// visualisation: cascade representations are projected to 2-D and colored
// by hand-crafted properties to show which features the learned
// representation encodes. Test sets here are a few hundred points, so the
// exact O(n^2) gradient is fine.

#ifndef CASCN_VIZ_TSNE_H_
#define CASCN_VIZ_TSNE_H_

#include "common/rng.h"
#include "tensor/tensor.h"

namespace cascn {

/// t-SNE hyper-parameters.
struct TsneOptions {
  double perplexity = 20.0;
  int iterations = 300;
  double learning_rate = 100.0;
  /// Early-exaggeration factor applied for the first quarter of iterations.
  double early_exaggeration = 4.0;
  double momentum = 0.5;
  double final_momentum = 0.8;
  uint64_t seed = 17;
};

/// Embeds the rows of `x` (points x features) into 2-D. Returns a
/// (points x 2) tensor. Deterministic in (x, options).
Tensor TsneEmbed(const Tensor& x, const TsneOptions& options = {});

}  // namespace cascn

#endif  // CASCN_VIZ_TSNE_H_
