// CSV exporters for the Fig. 9 visual artefacts: heatmaps of learned
// representations and 2-D scatter layouts colored by cascade properties.
// The bench binary writes these files so any plotting tool can render the
// figures.

#ifndef CASCN_VIZ_EXPORT_H_
#define CASCN_VIZ_EXPORT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "tensor/tensor.h"

namespace cascn {

/// Writes a matrix as CSV with optional column headers.
Status WriteMatrixCsv(const std::string& path, const Tensor& matrix,
                      const std::vector<std::string>& column_names = {});

/// Writes a 2-D scatter layout with one color value per point:
/// columns x,y,color.
Status WriteScatterCsv(const std::string& path, const Tensor& layout,
                       const std::vector<double>& color);

}  // namespace cascn

#endif  // CASCN_VIZ_EXPORT_H_
