#include "viz/export.h"

#include <fstream>

#include "common/string_util.h"

namespace cascn {

Status WriteMatrixCsv(const std::string& path, const Tensor& matrix,
                      const std::vector<std::string>& column_names) {
  std::ofstream out(path);
  if (!out.is_open()) return Status::IoError("cannot open " + path);
  if (!column_names.empty()) {
    if (static_cast<int>(column_names.size()) != matrix.cols())
      return Status::InvalidArgument("header width mismatch");
    out << Join(column_names, ",") << "\n";
  }
  for (int i = 0; i < matrix.rows(); ++i) {
    for (int j = 0; j < matrix.cols(); ++j) {
      if (j > 0) out << ",";
      out << matrix.At(i, j);
    }
    out << "\n";
  }
  if (!out.good()) return Status::IoError("write failed for " + path);
  return Status::OK();
}

Status WriteScatterCsv(const std::string& path, const Tensor& layout,
                       const std::vector<double>& color) {
  if (layout.cols() != 2)
    return Status::InvalidArgument("scatter layout must be n x 2");
  if (static_cast<int>(color.size()) != layout.rows())
    return Status::InvalidArgument("color size mismatch");
  std::ofstream out(path);
  if (!out.is_open()) return Status::IoError("cannot open " + path);
  out << "x,y,color\n";
  for (int i = 0; i < layout.rows(); ++i) {
    out << layout.At(i, 0) << "," << layout.At(i, 1) << "," << color[i]
        << "\n";
  }
  if (!out.good()) return Status::IoError("write failed for " + path);
  return Status::OK();
}

}  // namespace cascn
