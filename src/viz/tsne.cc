#include "viz/tsne.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.h"

namespace cascn {

namespace {

/// Squared Euclidean distances between all row pairs.
Tensor PairwiseSquaredDistances(const Tensor& x) {
  const int n = x.rows();
  Tensor d(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      double s = 0;
      for (int k = 0; k < x.cols(); ++k) {
        const double diff = x.At(i, k) - x.At(j, k);
        s += diff * diff;
      }
      d.At(i, j) = s;
      d.At(j, i) = s;
    }
  }
  return d;
}

/// Row-conditional probabilities p_{j|i} with per-row bandwidth found by
/// binary search to match log(perplexity) entropy.
Tensor ConditionalProbabilities(const Tensor& distances, double perplexity) {
  const int n = distances.rows();
  const double target_entropy = std::log(perplexity);
  Tensor p(n, n);
  for (int i = 0; i < n; ++i) {
    double beta_lo = 0, beta_hi = 1e12, beta = 1.0;
    for (int iter = 0; iter < 50; ++iter) {
      double sum = 0, weighted = 0;
      for (int j = 0; j < n; ++j) {
        if (j == i) continue;
        const double w = std::exp(-distances.At(i, j) * beta);
        sum += w;
        weighted += w * distances.At(i, j);
      }
      if (sum <= 0) break;
      const double entropy = std::log(sum) + beta * weighted / sum;
      if (std::fabs(entropy - target_entropy) < 1e-5) break;
      if (entropy > target_entropy) {
        beta_lo = beta;
        beta = beta_hi > 1e11 ? beta * 2 : (beta + beta_hi) / 2;
      } else {
        beta_hi = beta;
        beta = (beta + beta_lo) / 2;
      }
    }
    double sum = 0;
    for (int j = 0; j < n; ++j) {
      if (j == i) continue;
      p.At(i, j) = std::exp(-distances.At(i, j) * beta);
      sum += p.At(i, j);
    }
    if (sum > 0)
      for (int j = 0; j < n; ++j) p.At(i, j) /= sum;
  }
  return p;
}

}  // namespace

Tensor TsneEmbed(const Tensor& x, const TsneOptions& options) {
  const int n = x.rows();
  CASCN_CHECK(n >= 2) << "t-SNE needs at least two points";
  const double perplexity =
      std::min(options.perplexity, (n - 1) / 3.0 < 2 ? 2.0 : (n - 1) / 3.0);

  // Symmetrised joint probabilities.
  const Tensor cond =
      ConditionalProbabilities(PairwiseSquaredDistances(x), perplexity);
  Tensor p(n, n);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      p.At(i, j) = std::max((cond.At(i, j) + cond.At(j, i)) / (2.0 * n), 1e-12);

  Rng rng(options.seed);
  Tensor y = Tensor::RandomNormal(n, 2, 1e-2, rng);
  Tensor velocity(n, 2);
  Tensor gradient(n, 2);

  const int exaggeration_end = options.iterations / 4;
  for (int iter = 0; iter < options.iterations; ++iter) {
    const double exaggeration =
        iter < exaggeration_end ? options.early_exaggeration : 1.0;
    // Student-t affinities q_{ij}.
    Tensor num(n, n);
    double q_sum = 0;
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        const double dy0 = y.At(i, 0) - y.At(j, 0);
        const double dy1 = y.At(i, 1) - y.At(j, 1);
        const double w = 1.0 / (1.0 + dy0 * dy0 + dy1 * dy1);
        num.At(i, j) = w;
        num.At(j, i) = w;
        q_sum += 2 * w;
      }
    }
    gradient.Zero();
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (i == j) continue;
        const double q = std::max(num.At(i, j) / q_sum, 1e-12);
        const double coeff =
            4.0 * (exaggeration * p.At(i, j) - q) * num.At(i, j);
        gradient.At(i, 0) += coeff * (y.At(i, 0) - y.At(j, 0));
        gradient.At(i, 1) += coeff * (y.At(i, 1) - y.At(j, 1));
      }
    }
    const double momentum =
        iter < exaggeration_end ? options.momentum : options.final_momentum;
    for (int i = 0; i < n; ++i) {
      for (int k = 0; k < 2; ++k) {
        velocity.At(i, k) = momentum * velocity.At(i, k) -
                            options.learning_rate * gradient.At(i, k);
        y.At(i, k) += velocity.At(i, k);
      }
    }
  }
  return y;
}

}  // namespace cascn
