#include "nn/optimizer.h"

#include <cmath>

namespace cascn::nn {

void Optimizer::ZeroGrad() {
  for (auto& p : params_) p.ZeroGrad();
}

Adam::Adam(std::vector<ag::Variable> params, Options options)
    : Optimizer(std::move(params)), options_(options) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(p.value().rows(), p.value().cols());
    v_.emplace_back(p.value().rows(), p.value().cols());
  }
}

Status Adam::RestoreState(const State& state) {
  if (state.m.size() != params_.size() || state.v.size() != params_.size())
    return Status::InvalidArgument(
        "optimizer state holds " + std::to_string(state.m.size()) +
        " moment tensors, optimizer has " + std::to_string(params_.size()) +
        " parameters");
  for (size_t i = 0; i < params_.size(); ++i) {
    const auto& p = params_[i].value();
    if (state.m[i].rows() != p.rows() || state.m[i].cols() != p.cols() ||
        state.v[i].rows() != p.rows() || state.v[i].cols() != p.cols())
      return Status::InvalidArgument(
          "optimizer state moment " + std::to_string(i) +
          " shape does not match its parameter");
  }
  t_ = state.t;
  m_ = state.m;
  v_ = state.v;
  return Status::OK();
}

void Adam::Step() {
  if (options_.clip_norm > 0) ClipGradNorm(params_, options_.clip_norm);
  ++t_;
  const double bias1 = 1.0 - std::pow(options_.beta1, t_);
  const double bias2 = 1.0 - std::pow(options_.beta2, t_);
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    const Tensor& g = p.grad();
    if (g.empty()) continue;  // parameter did not participate this step
    Tensor& value = p.mutable_value();
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    for (int r = 0; r < value.rows(); ++r) {
      for (int c = 0; c < value.cols(); ++c) {
        const double grad = g.At(r, c);
        m.At(r, c) = options_.beta1 * m.At(r, c) + (1 - options_.beta1) * grad;
        v.At(r, c) =
            options_.beta2 * v.At(r, c) + (1 - options_.beta2) * grad * grad;
        const double m_hat = m.At(r, c) / bias1;
        const double v_hat = v.At(r, c) / bias2;
        double update = m_hat / (std::sqrt(v_hat) + options_.epsilon);
        if (options_.weight_decay > 0)
          update += options_.weight_decay * value.At(r, c);
        value.At(r, c) -= options_.learning_rate * update;
      }
    }
    p.ZeroGrad();
  }
}

Sgd::Sgd(std::vector<ag::Variable> params, Options options)
    : Optimizer(std::move(params)), options_(options) {
  velocity_.reserve(params_.size());
  for (const auto& p : params_)
    velocity_.emplace_back(p.value().rows(), p.value().cols());
}

void Sgd::Step() {
  if (options_.clip_norm > 0) ClipGradNorm(params_, options_.clip_norm);
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    const Tensor& g = p.grad();
    if (g.empty()) continue;
    Tensor& value = p.mutable_value();
    Tensor& vel = velocity_[i];
    for (int r = 0; r < value.rows(); ++r) {
      for (int c = 0; c < value.cols(); ++c) {
        vel.At(r, c) =
            options_.momentum * vel.At(r, c) - options_.learning_rate * g.At(r, c);
        value.At(r, c) += vel.At(r, c);
      }
    }
    p.ZeroGrad();
  }
}

double GlobalGradNorm(const std::vector<ag::Variable>& params) {
  double total = 0;
  for (const auto& p : params) {
    const Tensor& g = p.grad();
    for (int r = 0; r < g.rows(); ++r)
      for (int c = 0; c < g.cols(); ++c) total += g.At(r, c) * g.At(r, c);
  }
  return std::sqrt(total);
}

void ClipGradNorm(std::vector<ag::Variable>& params, double max_norm) {
  if (max_norm <= 0) return;
  const double norm = GlobalGradNorm(params);
  if (norm <= max_norm || norm == 0) return;
  const double scale = max_norm / norm;
  for (auto& p : params) {
    if (p.grad().empty()) continue;
    p.mutable_grad().Scale(scale);
  }
}

}  // namespace cascn::nn
