#include "nn/loss.h"

#include "common/logging.h"

namespace cascn::nn {

ag::Variable SquaredError(const ag::Variable& pred, double log_target) {
  CASCN_CHECK(pred.rows() == 1 && pred.cols() == 1)
      << "SquaredError expects a scalar prediction";
  return ag::Square(ag::AddScalar(pred, -log_target));
}

ag::Variable MeanLoss(const std::vector<ag::Variable>& sample_losses) {
  CASCN_CHECK(!sample_losses.empty());
  ag::Variable total = sample_losses[0];
  for (size_t i = 1; i < sample_losses.size(); ++i)
    total = ag::Add(total, sample_losses[i]);
  return ag::ScalarMul(total, 1.0 / static_cast<double>(sample_losses.size()));
}

}  // namespace cascn::nn
