// Weight initialisation schemes.

#ifndef CASCN_NN_INIT_H_
#define CASCN_NN_INIT_H_

#include "common/rng.h"
#include "tensor/tensor.h"

namespace cascn::nn {

/// Xavier/Glorot uniform: U[-a, a] with a = sqrt(6 / (fan_in + fan_out)).
Tensor XavierUniform(int fan_in, int fan_out, Rng& rng);

/// Xavier/Glorot normal: N(0, 2 / (fan_in + fan_out)).
Tensor XavierNormal(int fan_in, int fan_out, Rng& rng);

}  // namespace cascn::nn

#endif  // CASCN_NN_INIT_H_
