#include "nn/mlp.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace cascn::nn {

Mlp::Mlp(const std::vector<int>& dims, Activation activation, Rng& rng)
    : activation_(activation) {
  CASCN_CHECK(dims.size() >= 2) << "Mlp needs at least input and output dims";
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.push_back(std::make_unique<Linear>(dims[i], dims[i + 1], rng));
    RegisterSubmodule(StrFormat("layer%zu", i), layers_.back().get());
  }
}

ag::Variable Mlp::Forward(const ag::Variable& x) const {
  ag::Variable h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i]->Forward(h);
    if (i + 1 < layers_.size()) {
      switch (activation_) {
        case Activation::kRelu:
          h = ag::Relu(h);
          break;
        case Activation::kTanh:
          h = ag::Tanh(h);
          break;
        case Activation::kSigmoid:
          h = ag::Sigmoid(h);
          break;
      }
    }
  }
  return h;
}

}  // namespace cascn::nn
