#include "nn/embedding.h"

#include <cmath>

namespace cascn::nn {

Embedding::Embedding(int vocab_size, int dim, Rng& rng) {
  const double scale = 1.0 / std::sqrt(static_cast<double>(dim));
  table_ = RegisterParameter(
      "table", Tensor::RandomUniform(vocab_size, dim, -scale, scale, rng));
}

ag::Variable Embedding::Lookup(const std::vector<int>& ids) const {
  return ag::GatherRows(table_, ids);
}

}  // namespace cascn::nn
