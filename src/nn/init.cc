#include "nn/init.h"

#include <cmath>

namespace cascn::nn {

Tensor XavierUniform(int fan_in, int fan_out, Rng& rng) {
  const double a = std::sqrt(6.0 / (fan_in + fan_out));
  return Tensor::RandomUniform(fan_in, fan_out, -a, a, rng);
}

Tensor XavierNormal(int fan_in, int fan_out, Rng& rng) {
  const double stddev = std::sqrt(2.0 / (fan_in + fan_out));
  return Tensor::RandomNormal(fan_in, fan_out, stddev, rng);
}

}  // namespace cascn::nn
