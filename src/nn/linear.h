// Linear (fully-connected) layer: y = x W + b.

#ifndef CASCN_NN_LINEAR_H_
#define CASCN_NN_LINEAR_H_

#include "common/rng.h"
#include "nn/module.h"

namespace cascn::nn {

/// Affine map applied row-wise: input (batch x in), output (batch x out).
class Linear : public Module {
 public:
  Linear(int in_features, int out_features, Rng& rng);

  ag::Variable Forward(const ag::Variable& x) const;

  int in_features() const { return weight_.rows(); }
  int out_features() const { return weight_.cols(); }

 private:
  ag::Variable weight_;  // in x out
  ag::Variable bias_;    // 1 x out
};

}  // namespace cascn::nn

#endif  // CASCN_NN_LINEAR_H_
