#include "nn/linear.h"

#include "nn/init.h"

namespace cascn::nn {

Linear::Linear(int in_features, int out_features, Rng& rng) {
  weight_ = RegisterParameter("weight",
                              XavierUniform(in_features, out_features, rng));
  bias_ = RegisterParameter("bias", Tensor(1, out_features));
}

ag::Variable Linear::Forward(const ag::Variable& x) const {
  return ag::AddRowBroadcast(ag::MatMul(x, weight_), bias_);
}

}  // namespace cascn::nn
