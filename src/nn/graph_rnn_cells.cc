#include "nn/graph_rnn_cells.h"

#include "common/logging.h"
#include "obs/trace.h"

namespace cascn::nn {

GraphConvLstmCell::GraphConvLstmCell(int num_nodes, int hidden_dim,
                                     int cheb_order, Rng& rng)
    : num_nodes_(num_nodes), hidden_dim_(hidden_dim) {
  auto conv_x = [&] {
    return std::make_unique<ChebConv>(num_nodes, hidden_dim, cheb_order, rng,
                                      /*with_bias=*/false);
  };
  auto conv_h = [&] {
    return std::make_unique<ChebConv>(hidden_dim, hidden_dim, cheb_order, rng,
                                      /*with_bias=*/false);
  };
  conv_x_i_ = conv_x();
  conv_x_f_ = conv_x();
  conv_x_o_ = conv_x();
  conv_x_c_ = conv_x();
  conv_h_i_ = conv_h();
  conv_h_f_ = conv_h();
  conv_h_o_ = conv_h();
  conv_h_c_ = conv_h();
  RegisterSubmodule("conv_x_i", conv_x_i_.get());
  RegisterSubmodule("conv_x_f", conv_x_f_.get());
  RegisterSubmodule("conv_x_o", conv_x_o_.get());
  RegisterSubmodule("conv_x_c", conv_x_c_.get());
  RegisterSubmodule("conv_h_i", conv_h_i_.get());
  RegisterSubmodule("conv_h_f", conv_h_f_.get());
  RegisterSubmodule("conv_h_o", conv_h_o_.get());
  RegisterSubmodule("conv_h_c", conv_h_c_.get());
  // Peepholes start at zero so early training matches a peephole-free LSTM.
  v_i_ = RegisterParameter("v_i", Tensor(num_nodes, hidden_dim));
  v_f_ = RegisterParameter("v_f", Tensor(num_nodes, hidden_dim));
  v_o_ = RegisterParameter("v_o", Tensor(num_nodes, hidden_dim));
  b_i_ = RegisterParameter("b_i", Tensor(1, hidden_dim));
  b_f_ = RegisterParameter("b_f", Tensor(1, hidden_dim, 1.0));
  b_o_ = RegisterParameter("b_o", Tensor(1, hidden_dim));
  b_c_ = RegisterParameter("b_c", Tensor(1, hidden_dim));
}

RnnState GraphConvLstmCell::InitialState() const {
  RnnState s;
  s.h = ag::Variable::Leaf(Tensor(num_nodes_, hidden_dim_));
  s.c = ag::Variable::Leaf(Tensor(num_nodes_, hidden_dim_));
  return s;
}

ag::Variable GraphConvLstmCell::Gate(const std::vector<CsrMatrix>& basis,
                                     const ChebConv& cx, const ChebConv& ch,
                                     const ag::Variable& x,
                                     const ag::Variable& h,
                                     const ag::Variable& bias) const {
  return ag::AddRowBroadcast(
      ag::Add(cx.Forward(basis, x), ch.Forward(basis, h)), bias);
}

RnnState GraphConvLstmCell::Step(const std::vector<CsrMatrix>& cheb_basis,
                                 const ag::Variable& x,
                                 const RnnState& prev) const {
  CASCN_TRACE_SPAN("graph_lstm_step");
  CASCN_CHECK(x.rows() == num_nodes_ && x.cols() == num_nodes_)
      << "snapshot signal must be n x n";
  const ag::Variable i = ag::Sigmoid(
      ag::Add(Gate(cheb_basis, *conv_x_i_, *conv_h_i_, x, prev.h, b_i_),
              ag::Mul(v_i_, prev.c)));
  const ag::Variable f = ag::Sigmoid(
      ag::Add(Gate(cheb_basis, *conv_x_f_, *conv_h_f_, x, prev.h, b_f_),
              ag::Mul(v_f_, prev.c)));
  const ag::Variable g =
      ag::Tanh(Gate(cheb_basis, *conv_x_c_, *conv_h_c_, x, prev.h, b_c_));
  RnnState next;
  next.c = ag::Add(ag::Mul(f, prev.c), ag::Mul(i, g));
  const ag::Variable o = ag::Sigmoid(
      ag::Add(Gate(cheb_basis, *conv_x_o_, *conv_h_o_, x, prev.h, b_o_),
              ag::Mul(v_o_, next.c)));
  next.h = ag::Mul(o, ag::Tanh(next.c));
  return next;
}

GraphConvGruCell::GraphConvGruCell(int num_nodes, int hidden_dim,
                                   int cheb_order, Rng& rng)
    : num_nodes_(num_nodes), hidden_dim_(hidden_dim) {
  auto conv_x = [&] {
    return std::make_unique<ChebConv>(num_nodes, hidden_dim, cheb_order, rng,
                                      /*with_bias=*/false);
  };
  auto conv_h = [&] {
    return std::make_unique<ChebConv>(hidden_dim, hidden_dim, cheb_order, rng,
                                      /*with_bias=*/false);
  };
  conv_x_r_ = conv_x();
  conv_x_z_ = conv_x();
  conv_x_n_ = conv_x();
  conv_h_r_ = conv_h();
  conv_h_z_ = conv_h();
  conv_h_n_ = conv_h();
  RegisterSubmodule("conv_x_r", conv_x_r_.get());
  RegisterSubmodule("conv_x_z", conv_x_z_.get());
  RegisterSubmodule("conv_x_n", conv_x_n_.get());
  RegisterSubmodule("conv_h_r", conv_h_r_.get());
  RegisterSubmodule("conv_h_z", conv_h_z_.get());
  RegisterSubmodule("conv_h_n", conv_h_n_.get());
  b_r_ = RegisterParameter("b_r", Tensor(1, hidden_dim));
  b_z_ = RegisterParameter("b_z", Tensor(1, hidden_dim));
  b_n_ = RegisterParameter("b_n", Tensor(1, hidden_dim));
}

RnnState GraphConvGruCell::InitialState() const {
  RnnState s;
  s.h = ag::Variable::Leaf(Tensor(num_nodes_, hidden_dim_));
  return s;
}

RnnState GraphConvGruCell::Step(const std::vector<CsrMatrix>& cheb_basis,
                                const ag::Variable& x,
                                const RnnState& prev) const {
  CASCN_TRACE_SPAN("graph_gru_step");
  CASCN_CHECK(x.rows() == num_nodes_ && x.cols() == num_nodes_);
  const ag::Variable r = ag::Sigmoid(ag::AddRowBroadcast(
      ag::Add(conv_x_r_->Forward(cheb_basis, x),
              conv_h_r_->Forward(cheb_basis, prev.h)),
      b_r_));
  const ag::Variable z = ag::Sigmoid(ag::AddRowBroadcast(
      ag::Add(conv_x_z_->Forward(cheb_basis, x),
              conv_h_z_->Forward(cheb_basis, prev.h)),
      b_z_));
  const ag::Variable n = ag::Tanh(ag::AddRowBroadcast(
      ag::Add(conv_x_n_->Forward(cheb_basis, x),
              conv_h_n_->Forward(cheb_basis, ag::Mul(r, prev.h))),
      b_n_));
  RnnState next;
  next.h = ag::Add(n, ag::Mul(z, ag::Sub(prev.h, n)));
  return next;
}

}  // namespace cascn::nn
