#include "nn/rnn_cells.h"

#include "common/logging.h"
#include "nn/init.h"

namespace cascn::nn {

namespace {

/// x @ Wx + h @ Wh + b for one gate.
ag::Variable GatePreactivation(const ag::Variable& x, const ag::Variable& h,
                               const ag::Variable& wx, const ag::Variable& wh,
                               const ag::Variable& b) {
  return ag::AddRowBroadcast(
      ag::Add(ag::MatMul(x, wx), ag::MatMul(h, wh)), b);
}

}  // namespace

LstmCell::LstmCell(int input_dim, int hidden_dim, Rng& rng)
    : input_dim_(input_dim), hidden_dim_(hidden_dim) {
  auto wx = [&](const char* name) {
    return RegisterParameter(name, XavierUniform(input_dim, hidden_dim, rng));
  };
  auto wh = [&](const char* name) {
    return RegisterParameter(name, XavierUniform(hidden_dim, hidden_dim, rng));
  };
  auto bias = [&](const char* name, double init) {
    return RegisterParameter(name, Tensor(1, hidden_dim, init));
  };
  wx_i_ = wx("wx_i");
  wx_f_ = wx("wx_f");
  wx_o_ = wx("wx_o");
  wx_g_ = wx("wx_g");
  wh_i_ = wh("wh_i");
  wh_f_ = wh("wh_f");
  wh_o_ = wh("wh_o");
  wh_g_ = wh("wh_g");
  b_i_ = bias("b_i", 0.0);
  b_f_ = bias("b_f", 1.0);  // forget-gate bias 1: standard trick
  b_o_ = bias("b_o", 0.0);
  b_g_ = bias("b_g", 0.0);
}

RnnState LstmCell::InitialState(int batch) const {
  RnnState s;
  s.h = ag::Variable::Leaf(Tensor(batch, hidden_dim_));
  s.c = ag::Variable::Leaf(Tensor(batch, hidden_dim_));
  return s;
}

RnnState LstmCell::Step(const ag::Variable& x, const RnnState& prev) const {
  CASCN_CHECK(x.cols() == input_dim_);
  const ag::Variable i =
      ag::Sigmoid(GatePreactivation(x, prev.h, wx_i_, wh_i_, b_i_));
  const ag::Variable f =
      ag::Sigmoid(GatePreactivation(x, prev.h, wx_f_, wh_f_, b_f_));
  const ag::Variable o =
      ag::Sigmoid(GatePreactivation(x, prev.h, wx_o_, wh_o_, b_o_));
  const ag::Variable g =
      ag::Tanh(GatePreactivation(x, prev.h, wx_g_, wh_g_, b_g_));
  RnnState next;
  next.c = ag::Add(ag::Mul(f, prev.c), ag::Mul(i, g));
  next.h = ag::Mul(o, ag::Tanh(next.c));
  return next;
}

GruCell::GruCell(int input_dim, int hidden_dim, Rng& rng)
    : input_dim_(input_dim), hidden_dim_(hidden_dim) {
  auto wx = [&](const char* name) {
    return RegisterParameter(name, XavierUniform(input_dim, hidden_dim, rng));
  };
  auto wh = [&](const char* name) {
    return RegisterParameter(name, XavierUniform(hidden_dim, hidden_dim, rng));
  };
  auto bias = [&](const char* name) {
    return RegisterParameter(name, Tensor(1, hidden_dim));
  };
  wx_r_ = wx("wx_r");
  wx_z_ = wx("wx_z");
  wx_n_ = wx("wx_n");
  wh_r_ = wh("wh_r");
  wh_z_ = wh("wh_z");
  wh_n_ = wh("wh_n");
  b_r_ = bias("b_r");
  b_z_ = bias("b_z");
  b_n_ = bias("b_n");
}

RnnState GruCell::InitialState(int batch) const {
  RnnState s;
  s.h = ag::Variable::Leaf(Tensor(batch, hidden_dim_));
  return s;
}

RnnState GruCell::Step(const ag::Variable& x, const RnnState& prev) const {
  CASCN_CHECK(x.cols() == input_dim_);
  const ag::Variable r =
      ag::Sigmoid(GatePreactivation(x, prev.h, wx_r_, wh_r_, b_r_));
  const ag::Variable z =
      ag::Sigmoid(GatePreactivation(x, prev.h, wx_z_, wh_z_, b_z_));
  const ag::Variable n = ag::Tanh(ag::AddRowBroadcast(
      ag::Add(ag::MatMul(x, wx_n_), ag::MatMul(ag::Mul(r, prev.h), wh_n_)),
      b_n_));
  // h' = (1 - z) * n + z * h  =  n + z * (h - n)
  RnnState next;
  next.h = ag::Add(n, ag::Mul(z, ag::Sub(prev.h, n)));
  return next;
}

}  // namespace cascn::nn
