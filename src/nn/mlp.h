// Multi-layer perceptron: stacked Linear layers with a hidden activation.
// The paper's prediction head (Eq. 18) is a two-hidden-layer MLP with one
// final output unit.

#ifndef CASCN_NN_MLP_H_
#define CASCN_NN_MLP_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "nn/linear.h"
#include "nn/module.h"

namespace cascn::nn {

/// Hidden-layer activation of an Mlp.
enum class Activation { kRelu, kTanh, kSigmoid };

/// Feed-forward network. `dims` gives layer widths including input and
/// output, e.g. {32, 32, 16, 1}. The activation is applied after every
/// layer except the last.
class Mlp : public Module {
 public:
  Mlp(const std::vector<int>& dims, Activation activation, Rng& rng);

  ag::Variable Forward(const ag::Variable& x) const;

  int in_features() const { return layers_.front()->in_features(); }
  int out_features() const { return layers_.back()->out_features(); }

 private:
  std::vector<std::unique_ptr<Linear>> layers_;
  Activation activation_;
};

}  // namespace cascn::nn

#endif  // CASCN_NN_MLP_H_
