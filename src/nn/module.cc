#include "nn/module.h"

#include <cstdint>

#include "common/logging.h"
#include "common/string_util.h"

namespace cascn::nn {

std::vector<ag::Variable> Module::Parameters() const {
  std::vector<ag::Variable> out;
  for (const auto& [name, p] : parameters_) out.push_back(p);
  for (const auto& [name, sub] : submodules_) {
    auto nested = sub->Parameters();
    out.insert(out.end(), nested.begin(), nested.end());
  }
  return out;
}

std::vector<std::pair<std::string, ag::Variable>> Module::NamedParameters()
    const {
  std::vector<std::pair<std::string, ag::Variable>> out = parameters_;
  for (const auto& [name, sub] : submodules_) {
    for (auto& [nested_name, p] : sub->NamedParameters())
      out.emplace_back(name + "." + nested_name, p);
  }
  return out;
}

void Module::ZeroGrad() {
  for (auto& p : Parameters()) p.ZeroGrad();
}

int64_t Module::ParameterCount() const {
  int64_t count = 0;
  for (const auto& p : Parameters()) count += p.value().size();
  return count;
}

Status Module::Save(std::ostream& out) const {
  const auto named = NamedParameters();
  const uint64_t n = named.size();
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  for (const auto& [name, p] : named) {
    const uint64_t name_len = name.size();
    out.write(reinterpret_cast<const char*>(&name_len), sizeof(name_len));
    out.write(name.data(), static_cast<std::streamsize>(name_len));
    const int32_t rows = p.value().rows();
    const int32_t cols = p.value().cols();
    out.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
    out.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
    out.write(reinterpret_cast<const char*>(p.value().data()),
              static_cast<std::streamsize>(sizeof(double) * p.value().size()));
  }
  if (!out.good()) return Status::IoError("failed writing module parameters");
  return Status::OK();
}

Status Module::Load(std::istream& in) {
  auto named = NamedParameters();
  uint64_t n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  if (!in.good() || n != named.size())
    return Status::InvalidArgument(
        StrFormat("parameter count mismatch: file has %llu, module has %zu",
                  static_cast<unsigned long long>(n), named.size()));
  for (auto& [name, p] : named) {
    uint64_t name_len = 0;
    in.read(reinterpret_cast<char*>(&name_len), sizeof(name_len));
    if (!in.good() || name_len > 1 << 20)
      return Status::IoError("corrupt parameter name length");
    std::string file_name(name_len, '\0');
    in.read(file_name.data(), static_cast<std::streamsize>(name_len));
    if (file_name != name)
      return Status::InvalidArgument("parameter name mismatch: expected " +
                                     name + ", file has " + file_name);
    int32_t rows = 0, cols = 0;
    in.read(reinterpret_cast<char*>(&rows), sizeof(rows));
    in.read(reinterpret_cast<char*>(&cols), sizeof(cols));
    if (rows != p.value().rows() || cols != p.value().cols())
      return Status::InvalidArgument("parameter shape mismatch for " + name);
    in.read(reinterpret_cast<char*>(p.mutable_value().data()),
            static_cast<std::streamsize>(sizeof(double) *
                                         p.value().size()));
    if (!in.good()) return Status::IoError("truncated parameter data");
  }
  return Status::OK();
}

ag::Variable Module::RegisterParameter(const std::string& name, Tensor value) {
  ag::Variable p = ag::Variable::Leaf(std::move(value), /*requires_grad=*/true);
  parameters_.emplace_back(name, p);
  return p;
}

void Module::RegisterSubmodule(const std::string& name, Module* submodule) {
  CASCN_CHECK(submodule != nullptr);
  submodules_.emplace_back(name, submodule);
}

}  // namespace cascn::nn
