// Regression losses. CasCN and all baselines predict log2(1 + increment
// size) and minimise squared error in that space, which is exactly the
// paper's MSLE objective (Eq. 19/20).

#ifndef CASCN_NN_LOSS_H_
#define CASCN_NN_LOSS_H_

#include <vector>

#include "tensor/variable.h"

namespace cascn::nn {

/// (pred - target)^2 for a 1x1 prediction against a scalar target already in
/// log space.
ag::Variable SquaredError(const ag::Variable& pred, double log_target);

/// Mean of per-sample squared errors (each a 1x1 Variable).
ag::Variable MeanLoss(const std::vector<ag::Variable>& sample_losses);

}  // namespace cascn::nn

#endif  // CASCN_NN_LOSS_H_
