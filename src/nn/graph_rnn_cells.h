// Graph-convolutional recurrent cells: the structural-temporal core of
// CasCN (Section IV-C, Eq. 12-14). A standard LSTM's dense input/hidden
// multiplications are replaced by Chebyshev graph convolutions over the
// cascade Laplacian, and peephole connections V (.) c couple the gates to
// the memory cell:
//
//   i_t = sigmoid(W_i *G X_t + U_i *G h_{t-1} + V_i (.) c_{t-1} + b_i)
//   f_t = sigmoid(W_f *G X_t + U_f *G h_{t-1} + V_f (.) c_{t-1} + b_f)
//   c_t = f_t (.) c_{t-1} + i_t (.) tanh(W_c *G X_t + U_c *G h_{t-1} + b_c)
//   o_t = sigmoid(W_o *G X_t + U_o *G h_{t-1} + V_o (.) c_t + b_o)
//   h_t = o_t (.) tanh(c_t)
//
// State lives per node: X_t is the (n x n) adjacency snapshot signal, h and
// c are (n x hidden). `n` is the padded cascade size fixed by the model
// configuration; the peephole matrices are (n x hidden) exactly as in the
// paper (V in R^{n x d_h}).
//
// GraphConvGruCell is the CasCN-GRU variant: same graph convolutions with
// GRU gating and no separate memory cell.

#ifndef CASCN_NN_GRAPH_RNN_CELLS_H_
#define CASCN_NN_GRAPH_RNN_CELLS_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "nn/cheb_conv.h"
#include "nn/module.h"
#include "nn/rnn_cells.h"

namespace cascn::nn {

/// LSTM cell whose gates are Chebyshev graph convolutions (CasCN Eq. 12-14).
class GraphConvLstmCell : public Module {
 public:
  /// `num_nodes` is the padded cascade size n (also the input feature width,
  /// because the snapshot signal X_t is the n x n adjacency matrix).
  GraphConvLstmCell(int num_nodes, int hidden_dim, int cheb_order, Rng& rng);

  RnnState InitialState() const;

  /// One step over snapshot signal `x` (n x n) with the cascade's Chebyshev
  /// basis (shared across steps; the Laplacian is per-cascade, not
  /// per-snapshot).
  RnnState Step(const std::vector<CsrMatrix>& cheb_basis,
                const ag::Variable& x, const RnnState& prev) const;

  int num_nodes() const { return num_nodes_; }
  int hidden_dim() const { return hidden_dim_; }
  int cheb_order() const { return conv_x_i_->order(); }

 private:
  ag::Variable Gate(const std::vector<CsrMatrix>& basis, const ChebConv& cx,
                    const ChebConv& ch, const ag::Variable& x,
                    const ag::Variable& h, const ag::Variable& bias) const;

  int num_nodes_;
  int hidden_dim_;
  // Graph-convolution filter banks per gate, for input X and hidden h.
  std::unique_ptr<ChebConv> conv_x_i_, conv_x_f_, conv_x_o_, conv_x_c_;
  std::unique_ptr<ChebConv> conv_h_i_, conv_h_f_, conv_h_o_, conv_h_c_;
  // Peephole weights (n x hidden) and biases (1 x hidden).
  ag::Variable v_i_, v_f_, v_o_;
  ag::Variable b_i_, b_f_, b_o_, b_c_;
};

/// GRU counterpart used by the CasCN-GRU variant (Table IV).
class GraphConvGruCell : public Module {
 public:
  GraphConvGruCell(int num_nodes, int hidden_dim, int cheb_order, Rng& rng);

  RnnState InitialState() const;
  RnnState Step(const std::vector<CsrMatrix>& cheb_basis,
                const ag::Variable& x, const RnnState& prev) const;

  int num_nodes() const { return num_nodes_; }
  int hidden_dim() const { return hidden_dim_; }
  int cheb_order() const { return conv_x_r_->order(); }

 private:
  int num_nodes_;
  int hidden_dim_;
  std::unique_ptr<ChebConv> conv_x_r_, conv_x_z_, conv_x_n_;
  std::unique_ptr<ChebConv> conv_h_r_, conv_h_z_, conv_h_n_;
  ag::Variable b_r_, b_z_, b_n_;
};

}  // namespace cascn::nn

#endif  // CASCN_NN_GRAPH_RNN_CELLS_H_
