// First-order optimizers over a parameter list: Adam (the paper's choice,
// Algorithm 2 step 8) and SGD with momentum, plus global-norm gradient
// clipping.

#ifndef CASCN_NN_OPTIMIZER_H_
#define CASCN_NN_OPTIMIZER_H_

#include <vector>

#include "nn/module.h"
#include "tensor/variable.h"

namespace cascn::nn {

/// Interface shared by the optimizers.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Applies one update using the gradients currently accumulated in the
  /// parameters, then zeroes them.
  virtual void Step() = 0;

  /// Zeroes parameter gradients without updating.
  void ZeroGrad();

 protected:
  explicit Optimizer(std::vector<ag::Variable> params)
      : params_(std::move(params)) {}

  std::vector<ag::Variable> params_;
};

/// Adaptive moment estimation (Kingma & Ba 2015).
class Adam : public Optimizer {
 public:
  struct Options {
    double learning_rate = 1e-3;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double epsilon = 1e-8;
    double weight_decay = 0.0;   // decoupled (AdamW-style) when > 0
    double clip_norm = 0.0;      // global-norm clip threshold; 0 disables
  };

  Adam(std::vector<ag::Variable> params, Options options);

  void Step() override;

  void set_learning_rate(double lr) { options_.learning_rate = lr; }
  double learning_rate() const { return options_.learning_rate; }

  /// Full optimizer state — step count and both moment vectors — so a
  /// training run can checkpoint and later resume bit-identically. The
  /// state is a deep copy; mutating the optimizer afterwards does not
  /// change a saved State.
  struct State {
    int64_t t = 0;
    std::vector<Tensor> m;
    std::vector<Tensor> v;
  };
  State SaveState() const { return State{t_, m_, v_}; }
  /// Rejects a State whose moment tensors do not match this optimizer's
  /// parameter count/shapes (e.g. a checkpoint from a different model).
  Status RestoreState(const State& state);

 private:
  Options options_;
  int64_t t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

/// Stochastic gradient descent with classical momentum.
class Sgd : public Optimizer {
 public:
  struct Options {
    double learning_rate = 1e-2;
    double momentum = 0.0;
    double clip_norm = 0.0;
  };

  Sgd(std::vector<ag::Variable> params, Options options);

  void Step() override;

 private:
  Options options_;
  std::vector<Tensor> velocity_;
};

/// Global (concatenated) L2 norm of the gradients currently accumulated in
/// `params`. Empty gradients contribute zero.
double GlobalGradNorm(const std::vector<ag::Variable>& params);

/// Scales all gradients so their global L2 norm is at most `max_norm`.
/// No-op when max_norm <= 0 or the norm is already within bounds.
void ClipGradNorm(std::vector<ag::Variable>& params, double max_norm);

}  // namespace cascn::nn

#endif  // CASCN_NN_OPTIMIZER_H_
