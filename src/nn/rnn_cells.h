// Dense recurrent cells: standard LSTM (Hochreiter & Schmidhuber 1997) and
// GRU (Cho et al. 2014). Used by the DeepCas/DeepHawkes baselines, the
// Topo-LSTM baseline, and the CasCN-GL variant (GCN followed by a plain
// LSTM).

#ifndef CASCN_NN_RNN_CELLS_H_
#define CASCN_NN_RNN_CELLS_H_

#include "common/rng.h"
#include "nn/module.h"

namespace cascn::nn {

/// Hidden and cell state of an LSTM step. For GRU, `c` is unused.
struct RnnState {
  ag::Variable h;
  ag::Variable c;
};

/// Standard LSTM cell operating on (batch x input_dim) rows.
class LstmCell : public Module {
 public:
  LstmCell(int input_dim, int hidden_dim, Rng& rng);

  /// Zero state for a batch of `batch` rows.
  RnnState InitialState(int batch) const;

  /// One recurrence step.
  RnnState Step(const ag::Variable& x, const RnnState& prev) const;

  int input_dim() const { return input_dim_; }
  int hidden_dim() const { return hidden_dim_; }

 private:
  int input_dim_;
  int hidden_dim_;
  // Gate weights: input(i), forget(f), output(o), candidate(g).
  ag::Variable wx_i_, wx_f_, wx_o_, wx_g_;  // input_dim x hidden
  ag::Variable wh_i_, wh_f_, wh_o_, wh_g_;  // hidden x hidden
  ag::Variable b_i_, b_f_, b_o_, b_g_;      // 1 x hidden
};

/// Standard GRU cell operating on (batch x input_dim) rows.
class GruCell : public Module {
 public:
  GruCell(int input_dim, int hidden_dim, Rng& rng);

  RnnState InitialState(int batch) const;
  RnnState Step(const ag::Variable& x, const RnnState& prev) const;

  int input_dim() const { return input_dim_; }
  int hidden_dim() const { return hidden_dim_; }

 private:
  int input_dim_;
  int hidden_dim_;
  // Gate weights: reset(r), update(z), candidate(n).
  ag::Variable wx_r_, wx_z_, wx_n_;
  ag::Variable wh_r_, wh_z_, wh_n_;
  ag::Variable b_r_, b_z_, b_n_;
};

}  // namespace cascn::nn

#endif  // CASCN_NN_RNN_CELLS_H_
