// Embedding: a learned lookup table mapping integer ids (users, nodes) to
// dense vectors. Used by the DeepCas/DeepHawkes/Node2Vec/LIS baselines and
// the CasCN-Path variant.

#ifndef CASCN_NN_EMBEDDING_H_
#define CASCN_NN_EMBEDDING_H_

#include <vector>

#include "common/rng.h"
#include "nn/module.h"

namespace cascn::nn {

/// Trainable (vocab x dim) table; Lookup gathers rows by id.
class Embedding : public Module {
 public:
  Embedding(int vocab_size, int dim, Rng& rng);

  /// Rows of the table for `ids`, as a (ids.size() x dim) Variable.
  /// Pre: every id in [0, vocab_size).
  ag::Variable Lookup(const std::vector<int>& ids) const;

  int vocab_size() const { return table_.rows(); }
  int dim() const { return table_.cols(); }

  /// Direct access for non-autodiff consumers (e.g. Node2Vec trainer).
  const ag::Variable& table() const { return table_; }

 private:
  ag::Variable table_;
};

}  // namespace cascn::nn

#endif  // CASCN_NN_EMBEDDING_H_
