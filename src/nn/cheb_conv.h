// ChebConv: K-order Chebyshev spectral graph convolution (Defferrard et al.
// 2016, Eq. 3 of the CasCN paper):
//
//   y = sum_{k=0}^{K-1} T_k(L~) X W_k
//
// where T_k is the k-th Chebyshev polynomial of the scaled Laplacian L~ and
// W_k are trainable filters. The Chebyshev basis {T_k(L~)} depends only on
// the graph, so callers precompute it once per cascade (see
// graph/chebyshev.h) and pass it to Forward.

#ifndef CASCN_NN_CHEB_CONV_H_
#define CASCN_NN_CHEB_CONV_H_

#include <vector>

#include "common/rng.h"
#include "nn/module.h"
#include "tensor/csr_matrix.h"

namespace cascn::nn {

/// K-order Chebyshev filter bank mapping (n x in) signals to (n x out).
class ChebConv : public Module {
 public:
  /// `k` filters of shape in x out, plus a shared bias when with_bias.
  ChebConv(int in_features, int out_features, int k, Rng& rng,
           bool with_bias = true);

  /// Applies the filter bank. `cheb_basis` holds T_0..T_{K-1} of the scaled
  /// Laplacian (each n x n); `x` is the (n x in) signal.
  /// Pre: cheb_basis.size() == order().
  ag::Variable Forward(const std::vector<CsrMatrix>& cheb_basis,
                       const ag::Variable& x) const;

  int in_features() const { return in_features_; }
  int out_features() const { return out_features_; }
  int order() const { return static_cast<int>(weights_.size()); }

 private:
  int in_features_;
  int out_features_;
  std::vector<ag::Variable> weights_;  // K tensors, each in x out
  ag::Variable bias_;                  // 1 x out; undefined when disabled
};

}  // namespace cascn::nn

#endif  // CASCN_NN_CHEB_CONV_H_
