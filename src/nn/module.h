// Module: base class for neural-network components with named trainable
// parameters. Provides the parameter registry that optimizers iterate and
// binary save/load of parameter values.

#ifndef CASCN_NN_MODULE_H_
#define CASCN_NN_MODULE_H_

#include <istream>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "tensor/variable.h"

namespace cascn::nn {

/// Base class for layers and models. Subclasses register parameters in their
/// constructor; Parameters() exposes them (and those of registered
/// submodules) to optimizers and serialization.
class Module {
 public:
  virtual ~Module() = default;

  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All trainable parameters, including those of registered submodules.
  std::vector<ag::Variable> Parameters() const;

  /// Parameters paired with hierarchical names ("mlp.layer0.weight").
  std::vector<std::pair<std::string, ag::Variable>> NamedParameters() const;

  /// Zeroes every parameter gradient.
  void ZeroGrad();

  /// Total number of trainable scalars.
  int64_t ParameterCount() const;

  /// Writes all parameter tensors in registration order (binary).
  Status Save(std::ostream& out) const;

  /// Reads parameter values written by Save. Shapes must match exactly.
  Status Load(std::istream& in);

 protected:
  /// Registers a trainable parameter; returns the Variable to store.
  ag::Variable RegisterParameter(const std::string& name, Tensor value);

  /// Registers a submodule; its parameters are exposed under `name.`.
  /// The submodule must outlive this module.
  void RegisterSubmodule(const std::string& name, Module* submodule);

 private:
  std::vector<std::pair<std::string, ag::Variable>> parameters_;
  std::vector<std::pair<std::string, Module*>> submodules_;
};

}  // namespace cascn::nn

#endif  // CASCN_NN_MODULE_H_
