#include "nn/cheb_conv.h"

#include "common/logging.h"
#include "common/string_util.h"
#include "nn/init.h"
#include "obs/trace.h"

namespace cascn::nn {

ChebConv::ChebConv(int in_features, int out_features, int k, Rng& rng,
                   bool with_bias)
    : in_features_(in_features), out_features_(out_features) {
  CASCN_CHECK(k >= 1) << "Chebyshev order must be >= 1";
  for (int i = 0; i < k; ++i) {
    weights_.push_back(RegisterParameter(
        StrFormat("w%d", i), XavierUniform(in_features, out_features, rng)));
  }
  if (with_bias) bias_ = RegisterParameter("bias", Tensor(1, out_features));
}

ag::Variable ChebConv::Forward(const std::vector<CsrMatrix>& cheb_basis,
                               const ag::Variable& x) const {
  CASCN_TRACE_SPAN("cheb_conv");
  CASCN_CHECK(static_cast<int>(cheb_basis.size()) == order())
      << "Chebyshev basis order mismatch: basis has " << cheb_basis.size()
      << ", layer expects " << order();
  CASCN_CHECK(x.cols() == in_features_);
  ag::Variable out;
  for (size_t k = 0; k < weights_.size(); ++k) {
    ag::Variable propagated = ag::SparseMatMul(cheb_basis[k], x);
    ag::Variable term = ag::MatMul(propagated, weights_[k]);
    out = out.defined() ? ag::Add(out, term) : term;
  }
  if (bias_.defined()) out = ag::AddRowBroadcast(out, bias_);
  return out;
}

}  // namespace cascn::nn
