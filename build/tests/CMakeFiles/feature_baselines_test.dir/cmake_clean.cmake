file(REMOVE_RECURSE
  "CMakeFiles/feature_baselines_test.dir/baselines/feature_baselines_test.cc.o"
  "CMakeFiles/feature_baselines_test.dir/baselines/feature_baselines_test.cc.o.d"
  "feature_baselines_test"
  "feature_baselines_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feature_baselines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
