# Empty compiler generated dependencies file for feature_baselines_test.
# This may be replaced when dependencies are built.
