# Empty dependencies file for streaming_predictor_test.
# This may be replaced when dependencies are built.
