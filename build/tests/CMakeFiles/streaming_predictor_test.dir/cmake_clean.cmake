file(REMOVE_RECURSE
  "CMakeFiles/streaming_predictor_test.dir/core/streaming_predictor_test.cc.o"
  "CMakeFiles/streaming_predictor_test.dir/core/streaming_predictor_test.cc.o.d"
  "streaming_predictor_test"
  "streaming_predictor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_predictor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
