# Empty dependencies file for cascn_gradcheck_test.
# This may be replaced when dependencies are built.
