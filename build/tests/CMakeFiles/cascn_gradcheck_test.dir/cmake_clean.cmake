file(REMOVE_RECURSE
  "CMakeFiles/cascn_gradcheck_test.dir/core/cascn_gradcheck_test.cc.o"
  "CMakeFiles/cascn_gradcheck_test.dir/core/cascn_gradcheck_test.cc.o.d"
  "cascn_gradcheck_test"
  "cascn_gradcheck_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cascn_gradcheck_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
