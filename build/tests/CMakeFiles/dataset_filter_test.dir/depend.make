# Empty dependencies file for dataset_filter_test.
# This may be replaced when dependencies are built.
