file(REMOVE_RECURSE
  "CMakeFiles/dataset_filter_test.dir/data/dataset_filter_test.cc.o"
  "CMakeFiles/dataset_filter_test.dir/data/dataset_filter_test.cc.o.d"
  "dataset_filter_test"
  "dataset_filter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataset_filter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
