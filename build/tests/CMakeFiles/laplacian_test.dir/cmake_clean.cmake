file(REMOVE_RECURSE
  "CMakeFiles/laplacian_test.dir/graph/laplacian_test.cc.o"
  "CMakeFiles/laplacian_test.dir/graph/laplacian_test.cc.o.d"
  "laplacian_test"
  "laplacian_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laplacian_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
