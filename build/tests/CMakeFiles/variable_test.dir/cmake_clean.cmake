file(REMOVE_RECURSE
  "CMakeFiles/variable_test.dir/tensor/variable_test.cc.o"
  "CMakeFiles/variable_test.dir/tensor/variable_test.cc.o.d"
  "variable_test"
  "variable_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/variable_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
