# Empty dependencies file for variable_test.
# This may be replaced when dependencies are built.
