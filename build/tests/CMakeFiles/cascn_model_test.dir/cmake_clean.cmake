file(REMOVE_RECURSE
  "CMakeFiles/cascn_model_test.dir/core/cascn_model_test.cc.o"
  "CMakeFiles/cascn_model_test.dir/core/cascn_model_test.cc.o.d"
  "cascn_model_test"
  "cascn_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cascn_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
