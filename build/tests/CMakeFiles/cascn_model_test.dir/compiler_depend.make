# Empty compiler generated dependencies file for cascn_model_test.
# This may be replaced when dependencies are built.
