# Empty compiler generated dependencies file for graph_rnn_test.
# This may be replaced when dependencies are built.
