file(REMOVE_RECURSE
  "CMakeFiles/graph_rnn_test.dir/nn/graph_rnn_test.cc.o"
  "CMakeFiles/graph_rnn_test.dir/nn/graph_rnn_test.cc.o.d"
  "graph_rnn_test"
  "graph_rnn_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_rnn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
