file(REMOVE_RECURSE
  "CMakeFiles/embedding_baselines_test.dir/baselines/embedding_baselines_test.cc.o"
  "CMakeFiles/embedding_baselines_test.dir/baselines/embedding_baselines_test.cc.o.d"
  "embedding_baselines_test"
  "embedding_baselines_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embedding_baselines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
