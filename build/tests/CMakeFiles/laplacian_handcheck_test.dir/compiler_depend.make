# Empty compiler generated dependencies file for laplacian_handcheck_test.
# This may be replaced when dependencies are built.
