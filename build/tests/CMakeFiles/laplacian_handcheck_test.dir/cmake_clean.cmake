file(REMOVE_RECURSE
  "CMakeFiles/laplacian_handcheck_test.dir/graph/laplacian_handcheck_test.cc.o"
  "CMakeFiles/laplacian_handcheck_test.dir/graph/laplacian_handcheck_test.cc.o.d"
  "laplacian_handcheck_test"
  "laplacian_handcheck_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laplacian_handcheck_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
