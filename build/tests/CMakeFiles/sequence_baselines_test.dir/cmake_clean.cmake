file(REMOVE_RECURSE
  "CMakeFiles/sequence_baselines_test.dir/baselines/sequence_baselines_test.cc.o"
  "CMakeFiles/sequence_baselines_test.dir/baselines/sequence_baselines_test.cc.o.d"
  "sequence_baselines_test"
  "sequence_baselines_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sequence_baselines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
