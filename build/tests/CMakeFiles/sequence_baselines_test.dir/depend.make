# Empty dependencies file for sequence_baselines_test.
# This may be replaced when dependencies are built.
