# Empty compiler generated dependencies file for hawkes_test.
# This may be replaced when dependencies are built.
