file(REMOVE_RECURSE
  "CMakeFiles/hawkes_test.dir/baselines/hawkes_test.cc.o"
  "CMakeFiles/hawkes_test.dir/baselines/hawkes_test.cc.o.d"
  "hawkes_test"
  "hawkes_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hawkes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
