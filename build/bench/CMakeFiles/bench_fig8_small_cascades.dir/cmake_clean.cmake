file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_small_cascades.dir/fig8_small_cascades.cpp.o"
  "CMakeFiles/bench_fig8_small_cascades.dir/fig8_small_cascades.cpp.o.d"
  "bench_fig8_small_cascades"
  "bench_fig8_small_cascades.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_small_cascades.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
