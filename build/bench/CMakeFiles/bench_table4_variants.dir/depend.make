# Empty dependencies file for bench_table4_variants.
# This may be replaced when dependencies are built.
