file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_variants.dir/table4_variants.cpp.o"
  "CMakeFiles/bench_table4_variants.dir/table4_variants.cpp.o.d"
  "bench_table4_variants"
  "bench_table4_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
