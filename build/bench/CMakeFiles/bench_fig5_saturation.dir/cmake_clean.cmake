file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_saturation.dir/fig5_saturation.cpp.o"
  "CMakeFiles/bench_fig5_saturation.dir/fig5_saturation.cpp.o.d"
  "bench_fig5_saturation"
  "bench_fig5_saturation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_saturation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
