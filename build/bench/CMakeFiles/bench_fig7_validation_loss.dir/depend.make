# Empty dependencies file for bench_fig7_validation_loss.
# This may be replaced when dependencies are built.
