file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_feature_visualization.dir/fig9_feature_visualization.cpp.o"
  "CMakeFiles/bench_fig9_feature_visualization.dir/fig9_feature_visualization.cpp.o.d"
  "bench_fig9_feature_visualization"
  "bench_fig9_feature_visualization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_feature_visualization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
