# Empty dependencies file for bench_fig9_feature_visualization.
# This may be replaced when dependencies are built.
