file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_extensions.dir/ext_extensions.cpp.o"
  "CMakeFiles/bench_ext_extensions.dir/ext_extensions.cpp.o.d"
  "bench_ext_extensions"
  "bench_ext_extensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
