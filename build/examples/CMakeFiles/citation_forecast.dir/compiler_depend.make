# Empty compiler generated dependencies file for citation_forecast.
# This may be replaced when dependencies are built.
