file(REMOVE_RECURSE
  "CMakeFiles/citation_forecast.dir/citation_forecast.cpp.o"
  "CMakeFiles/citation_forecast.dir/citation_forecast.cpp.o.d"
  "citation_forecast"
  "citation_forecast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/citation_forecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
