file(REMOVE_RECURSE
  "CMakeFiles/weibo_retweet_prediction.dir/weibo_retweet_prediction.cpp.o"
  "CMakeFiles/weibo_retweet_prediction.dir/weibo_retweet_prediction.cpp.o.d"
  "weibo_retweet_prediction"
  "weibo_retweet_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weibo_retweet_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
