# Empty dependencies file for weibo_retweet_prediction.
# This may be replaced when dependencies are built.
