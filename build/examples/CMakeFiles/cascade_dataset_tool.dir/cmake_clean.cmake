file(REMOVE_RECURSE
  "CMakeFiles/cascade_dataset_tool.dir/cascade_dataset_tool.cpp.o"
  "CMakeFiles/cascade_dataset_tool.dir/cascade_dataset_tool.cpp.o.d"
  "cascade_dataset_tool"
  "cascade_dataset_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cascade_dataset_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
