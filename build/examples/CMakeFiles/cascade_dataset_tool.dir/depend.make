# Empty dependencies file for cascade_dataset_tool.
# This may be replaced when dependencies are built.
