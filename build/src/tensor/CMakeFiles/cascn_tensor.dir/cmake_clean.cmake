file(REMOVE_RECURSE
  "CMakeFiles/cascn_tensor.dir/csr_matrix.cc.o"
  "CMakeFiles/cascn_tensor.dir/csr_matrix.cc.o.d"
  "CMakeFiles/cascn_tensor.dir/grad_check.cc.o"
  "CMakeFiles/cascn_tensor.dir/grad_check.cc.o.d"
  "CMakeFiles/cascn_tensor.dir/linalg.cc.o"
  "CMakeFiles/cascn_tensor.dir/linalg.cc.o.d"
  "CMakeFiles/cascn_tensor.dir/tensor.cc.o"
  "CMakeFiles/cascn_tensor.dir/tensor.cc.o.d"
  "CMakeFiles/cascn_tensor.dir/variable.cc.o"
  "CMakeFiles/cascn_tensor.dir/variable.cc.o.d"
  "libcascn_tensor.a"
  "libcascn_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cascn_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
