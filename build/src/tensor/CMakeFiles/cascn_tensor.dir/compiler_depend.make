# Empty compiler generated dependencies file for cascn_tensor.
# This may be replaced when dependencies are built.
