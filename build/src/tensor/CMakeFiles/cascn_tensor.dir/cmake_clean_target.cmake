file(REMOVE_RECURSE
  "libcascn_tensor.a"
)
