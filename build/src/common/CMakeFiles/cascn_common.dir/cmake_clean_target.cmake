file(REMOVE_RECURSE
  "libcascn_common.a"
)
