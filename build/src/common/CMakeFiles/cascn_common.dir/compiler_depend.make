# Empty compiler generated dependencies file for cascn_common.
# This may be replaced when dependencies are built.
