file(REMOVE_RECURSE
  "CMakeFiles/cascn_common.dir/cli_flags.cc.o"
  "CMakeFiles/cascn_common.dir/cli_flags.cc.o.d"
  "CMakeFiles/cascn_common.dir/logging.cc.o"
  "CMakeFiles/cascn_common.dir/logging.cc.o.d"
  "CMakeFiles/cascn_common.dir/math_util.cc.o"
  "CMakeFiles/cascn_common.dir/math_util.cc.o.d"
  "CMakeFiles/cascn_common.dir/rng.cc.o"
  "CMakeFiles/cascn_common.dir/rng.cc.o.d"
  "CMakeFiles/cascn_common.dir/status.cc.o"
  "CMakeFiles/cascn_common.dir/status.cc.o.d"
  "CMakeFiles/cascn_common.dir/string_util.cc.o"
  "CMakeFiles/cascn_common.dir/string_util.cc.o.d"
  "CMakeFiles/cascn_common.dir/thread_pool.cc.o"
  "CMakeFiles/cascn_common.dir/thread_pool.cc.o.d"
  "libcascn_common.a"
  "libcascn_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cascn_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
