file(REMOVE_RECURSE
  "CMakeFiles/cascn_nn.dir/cheb_conv.cc.o"
  "CMakeFiles/cascn_nn.dir/cheb_conv.cc.o.d"
  "CMakeFiles/cascn_nn.dir/embedding.cc.o"
  "CMakeFiles/cascn_nn.dir/embedding.cc.o.d"
  "CMakeFiles/cascn_nn.dir/graph_rnn_cells.cc.o"
  "CMakeFiles/cascn_nn.dir/graph_rnn_cells.cc.o.d"
  "CMakeFiles/cascn_nn.dir/init.cc.o"
  "CMakeFiles/cascn_nn.dir/init.cc.o.d"
  "CMakeFiles/cascn_nn.dir/linear.cc.o"
  "CMakeFiles/cascn_nn.dir/linear.cc.o.d"
  "CMakeFiles/cascn_nn.dir/loss.cc.o"
  "CMakeFiles/cascn_nn.dir/loss.cc.o.d"
  "CMakeFiles/cascn_nn.dir/mlp.cc.o"
  "CMakeFiles/cascn_nn.dir/mlp.cc.o.d"
  "CMakeFiles/cascn_nn.dir/module.cc.o"
  "CMakeFiles/cascn_nn.dir/module.cc.o.d"
  "CMakeFiles/cascn_nn.dir/optimizer.cc.o"
  "CMakeFiles/cascn_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/cascn_nn.dir/rnn_cells.cc.o"
  "CMakeFiles/cascn_nn.dir/rnn_cells.cc.o.d"
  "libcascn_nn.a"
  "libcascn_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cascn_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
