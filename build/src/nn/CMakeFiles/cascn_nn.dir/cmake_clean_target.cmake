file(REMOVE_RECURSE
  "libcascn_nn.a"
)
