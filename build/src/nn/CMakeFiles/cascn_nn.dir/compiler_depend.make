# Empty compiler generated dependencies file for cascn_nn.
# This may be replaced when dependencies are built.
