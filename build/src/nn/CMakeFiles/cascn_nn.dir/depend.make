# Empty dependencies file for cascn_nn.
# This may be replaced when dependencies are built.
