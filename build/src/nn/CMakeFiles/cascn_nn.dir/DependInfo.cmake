
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/cheb_conv.cc" "src/nn/CMakeFiles/cascn_nn.dir/cheb_conv.cc.o" "gcc" "src/nn/CMakeFiles/cascn_nn.dir/cheb_conv.cc.o.d"
  "/root/repo/src/nn/embedding.cc" "src/nn/CMakeFiles/cascn_nn.dir/embedding.cc.o" "gcc" "src/nn/CMakeFiles/cascn_nn.dir/embedding.cc.o.d"
  "/root/repo/src/nn/graph_rnn_cells.cc" "src/nn/CMakeFiles/cascn_nn.dir/graph_rnn_cells.cc.o" "gcc" "src/nn/CMakeFiles/cascn_nn.dir/graph_rnn_cells.cc.o.d"
  "/root/repo/src/nn/init.cc" "src/nn/CMakeFiles/cascn_nn.dir/init.cc.o" "gcc" "src/nn/CMakeFiles/cascn_nn.dir/init.cc.o.d"
  "/root/repo/src/nn/linear.cc" "src/nn/CMakeFiles/cascn_nn.dir/linear.cc.o" "gcc" "src/nn/CMakeFiles/cascn_nn.dir/linear.cc.o.d"
  "/root/repo/src/nn/loss.cc" "src/nn/CMakeFiles/cascn_nn.dir/loss.cc.o" "gcc" "src/nn/CMakeFiles/cascn_nn.dir/loss.cc.o.d"
  "/root/repo/src/nn/mlp.cc" "src/nn/CMakeFiles/cascn_nn.dir/mlp.cc.o" "gcc" "src/nn/CMakeFiles/cascn_nn.dir/mlp.cc.o.d"
  "/root/repo/src/nn/module.cc" "src/nn/CMakeFiles/cascn_nn.dir/module.cc.o" "gcc" "src/nn/CMakeFiles/cascn_nn.dir/module.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/nn/CMakeFiles/cascn_nn.dir/optimizer.cc.o" "gcc" "src/nn/CMakeFiles/cascn_nn.dir/optimizer.cc.o.d"
  "/root/repo/src/nn/rnn_cells.cc" "src/nn/CMakeFiles/cascn_nn.dir/rnn_cells.cc.o" "gcc" "src/nn/CMakeFiles/cascn_nn.dir/rnn_cells.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/cascn_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cascn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
