file(REMOVE_RECURSE
  "CMakeFiles/cascn_features.dir/cascade_features.cc.o"
  "CMakeFiles/cascn_features.dir/cascade_features.cc.o.d"
  "libcascn_features.a"
  "libcascn_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cascn_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
