file(REMOVE_RECURSE
  "libcascn_features.a"
)
