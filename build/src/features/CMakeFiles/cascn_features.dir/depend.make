# Empty dependencies file for cascn_features.
# This may be replaced when dependencies are built.
