# Empty dependencies file for cascn_baselines.
# This may be replaced when dependencies are built.
