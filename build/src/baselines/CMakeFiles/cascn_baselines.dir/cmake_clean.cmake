file(REMOVE_RECURSE
  "CMakeFiles/cascn_baselines.dir/deepcas_model.cc.o"
  "CMakeFiles/cascn_baselines.dir/deepcas_model.cc.o.d"
  "CMakeFiles/cascn_baselines.dir/deephawkes_model.cc.o"
  "CMakeFiles/cascn_baselines.dir/deephawkes_model.cc.o.d"
  "CMakeFiles/cascn_baselines.dir/feature_deep.cc.o"
  "CMakeFiles/cascn_baselines.dir/feature_deep.cc.o.d"
  "CMakeFiles/cascn_baselines.dir/feature_linear.cc.o"
  "CMakeFiles/cascn_baselines.dir/feature_linear.cc.o.d"
  "CMakeFiles/cascn_baselines.dir/hawkes_model.cc.o"
  "CMakeFiles/cascn_baselines.dir/hawkes_model.cc.o.d"
  "CMakeFiles/cascn_baselines.dir/lis_model.cc.o"
  "CMakeFiles/cascn_baselines.dir/lis_model.cc.o.d"
  "CMakeFiles/cascn_baselines.dir/node2vec_model.cc.o"
  "CMakeFiles/cascn_baselines.dir/node2vec_model.cc.o.d"
  "CMakeFiles/cascn_baselines.dir/topolstm_model.cc.o"
  "CMakeFiles/cascn_baselines.dir/topolstm_model.cc.o.d"
  "libcascn_baselines.a"
  "libcascn_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cascn_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
