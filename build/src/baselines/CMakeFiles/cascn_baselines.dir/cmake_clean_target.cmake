file(REMOVE_RECURSE
  "libcascn_baselines.a"
)
