
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/deepcas_model.cc" "src/baselines/CMakeFiles/cascn_baselines.dir/deepcas_model.cc.o" "gcc" "src/baselines/CMakeFiles/cascn_baselines.dir/deepcas_model.cc.o.d"
  "/root/repo/src/baselines/deephawkes_model.cc" "src/baselines/CMakeFiles/cascn_baselines.dir/deephawkes_model.cc.o" "gcc" "src/baselines/CMakeFiles/cascn_baselines.dir/deephawkes_model.cc.o.d"
  "/root/repo/src/baselines/feature_deep.cc" "src/baselines/CMakeFiles/cascn_baselines.dir/feature_deep.cc.o" "gcc" "src/baselines/CMakeFiles/cascn_baselines.dir/feature_deep.cc.o.d"
  "/root/repo/src/baselines/feature_linear.cc" "src/baselines/CMakeFiles/cascn_baselines.dir/feature_linear.cc.o" "gcc" "src/baselines/CMakeFiles/cascn_baselines.dir/feature_linear.cc.o.d"
  "/root/repo/src/baselines/hawkes_model.cc" "src/baselines/CMakeFiles/cascn_baselines.dir/hawkes_model.cc.o" "gcc" "src/baselines/CMakeFiles/cascn_baselines.dir/hawkes_model.cc.o.d"
  "/root/repo/src/baselines/lis_model.cc" "src/baselines/CMakeFiles/cascn_baselines.dir/lis_model.cc.o" "gcc" "src/baselines/CMakeFiles/cascn_baselines.dir/lis_model.cc.o.d"
  "/root/repo/src/baselines/node2vec_model.cc" "src/baselines/CMakeFiles/cascn_baselines.dir/node2vec_model.cc.o" "gcc" "src/baselines/CMakeFiles/cascn_baselines.dir/node2vec_model.cc.o.d"
  "/root/repo/src/baselines/topolstm_model.cc" "src/baselines/CMakeFiles/cascn_baselines.dir/topolstm_model.cc.o" "gcc" "src/baselines/CMakeFiles/cascn_baselines.dir/topolstm_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cascn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/cascn_features.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/cascn_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/cascn_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/cascn_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/cascn_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cascn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
