file(REMOVE_RECURSE
  "CMakeFiles/cascn_viz.dir/export.cc.o"
  "CMakeFiles/cascn_viz.dir/export.cc.o.d"
  "CMakeFiles/cascn_viz.dir/tsne.cc.o"
  "CMakeFiles/cascn_viz.dir/tsne.cc.o.d"
  "libcascn_viz.a"
  "libcascn_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cascn_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
