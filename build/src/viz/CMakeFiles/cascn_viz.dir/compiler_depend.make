# Empty compiler generated dependencies file for cascn_viz.
# This may be replaced when dependencies are built.
