file(REMOVE_RECURSE
  "libcascn_viz.a"
)
