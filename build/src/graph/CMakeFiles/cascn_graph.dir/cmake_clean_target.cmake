file(REMOVE_RECURSE
  "libcascn_graph.a"
)
