file(REMOVE_RECURSE
  "CMakeFiles/cascn_graph.dir/cascade.cc.o"
  "CMakeFiles/cascn_graph.dir/cascade.cc.o.d"
  "CMakeFiles/cascn_graph.dir/chebyshev.cc.o"
  "CMakeFiles/cascn_graph.dir/chebyshev.cc.o.d"
  "CMakeFiles/cascn_graph.dir/laplacian.cc.o"
  "CMakeFiles/cascn_graph.dir/laplacian.cc.o.d"
  "CMakeFiles/cascn_graph.dir/metrics.cc.o"
  "CMakeFiles/cascn_graph.dir/metrics.cc.o.d"
  "CMakeFiles/cascn_graph.dir/random_walk.cc.o"
  "CMakeFiles/cascn_graph.dir/random_walk.cc.o.d"
  "CMakeFiles/cascn_graph.dir/snapshot.cc.o"
  "CMakeFiles/cascn_graph.dir/snapshot.cc.o.d"
  "libcascn_graph.a"
  "libcascn_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cascn_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
