
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/cascade.cc" "src/graph/CMakeFiles/cascn_graph.dir/cascade.cc.o" "gcc" "src/graph/CMakeFiles/cascn_graph.dir/cascade.cc.o.d"
  "/root/repo/src/graph/chebyshev.cc" "src/graph/CMakeFiles/cascn_graph.dir/chebyshev.cc.o" "gcc" "src/graph/CMakeFiles/cascn_graph.dir/chebyshev.cc.o.d"
  "/root/repo/src/graph/laplacian.cc" "src/graph/CMakeFiles/cascn_graph.dir/laplacian.cc.o" "gcc" "src/graph/CMakeFiles/cascn_graph.dir/laplacian.cc.o.d"
  "/root/repo/src/graph/metrics.cc" "src/graph/CMakeFiles/cascn_graph.dir/metrics.cc.o" "gcc" "src/graph/CMakeFiles/cascn_graph.dir/metrics.cc.o.d"
  "/root/repo/src/graph/random_walk.cc" "src/graph/CMakeFiles/cascn_graph.dir/random_walk.cc.o" "gcc" "src/graph/CMakeFiles/cascn_graph.dir/random_walk.cc.o.d"
  "/root/repo/src/graph/snapshot.cc" "src/graph/CMakeFiles/cascn_graph.dir/snapshot.cc.o" "gcc" "src/graph/CMakeFiles/cascn_graph.dir/snapshot.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/cascn_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cascn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
