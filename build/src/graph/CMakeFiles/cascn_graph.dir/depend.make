# Empty dependencies file for cascn_graph.
# This may be replaced when dependencies are built.
