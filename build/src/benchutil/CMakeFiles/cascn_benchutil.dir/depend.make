# Empty dependencies file for cascn_benchutil.
# This may be replaced when dependencies are built.
