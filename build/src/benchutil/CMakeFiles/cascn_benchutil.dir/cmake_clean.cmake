file(REMOVE_RECURSE
  "CMakeFiles/cascn_benchutil.dir/experiment_runner.cc.o"
  "CMakeFiles/cascn_benchutil.dir/experiment_runner.cc.o.d"
  "CMakeFiles/cascn_benchutil.dir/table_printer.cc.o"
  "CMakeFiles/cascn_benchutil.dir/table_printer.cc.o.d"
  "libcascn_benchutil.a"
  "libcascn_benchutil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cascn_benchutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
