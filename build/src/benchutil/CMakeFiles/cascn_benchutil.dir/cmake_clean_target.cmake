file(REMOVE_RECURSE
  "libcascn_benchutil.a"
)
