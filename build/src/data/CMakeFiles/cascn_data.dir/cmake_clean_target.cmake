file(REMOVE_RECURSE
  "libcascn_data.a"
)
