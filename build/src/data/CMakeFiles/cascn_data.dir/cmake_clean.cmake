file(REMOVE_RECURSE
  "CMakeFiles/cascn_data.dir/cascade_generator.cc.o"
  "CMakeFiles/cascn_data.dir/cascade_generator.cc.o.d"
  "CMakeFiles/cascn_data.dir/dataset.cc.o"
  "CMakeFiles/cascn_data.dir/dataset.cc.o.d"
  "CMakeFiles/cascn_data.dir/statistics.cc.o"
  "CMakeFiles/cascn_data.dir/statistics.cc.o.d"
  "CMakeFiles/cascn_data.dir/text_format.cc.o"
  "CMakeFiles/cascn_data.dir/text_format.cc.o.d"
  "libcascn_data.a"
  "libcascn_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cascn_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
