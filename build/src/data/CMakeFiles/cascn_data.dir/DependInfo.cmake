
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/cascade_generator.cc" "src/data/CMakeFiles/cascn_data.dir/cascade_generator.cc.o" "gcc" "src/data/CMakeFiles/cascn_data.dir/cascade_generator.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/data/CMakeFiles/cascn_data.dir/dataset.cc.o" "gcc" "src/data/CMakeFiles/cascn_data.dir/dataset.cc.o.d"
  "/root/repo/src/data/statistics.cc" "src/data/CMakeFiles/cascn_data.dir/statistics.cc.o" "gcc" "src/data/CMakeFiles/cascn_data.dir/statistics.cc.o.d"
  "/root/repo/src/data/text_format.cc" "src/data/CMakeFiles/cascn_data.dir/text_format.cc.o" "gcc" "src/data/CMakeFiles/cascn_data.dir/text_format.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/cascn_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cascn_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/cascn_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
