# Empty dependencies file for cascn_data.
# This may be replaced when dependencies are built.
