file(REMOVE_RECURSE
  "libcascn_core.a"
)
