file(REMOVE_RECURSE
  "CMakeFiles/cascn_core.dir/cascn_model.cc.o"
  "CMakeFiles/cascn_core.dir/cascn_model.cc.o.d"
  "CMakeFiles/cascn_core.dir/cascn_path_model.cc.o"
  "CMakeFiles/cascn_core.dir/cascn_path_model.cc.o.d"
  "CMakeFiles/cascn_core.dir/encoder.cc.o"
  "CMakeFiles/cascn_core.dir/encoder.cc.o.d"
  "CMakeFiles/cascn_core.dir/streaming_predictor.cc.o"
  "CMakeFiles/cascn_core.dir/streaming_predictor.cc.o.d"
  "CMakeFiles/cascn_core.dir/trainer.cc.o"
  "CMakeFiles/cascn_core.dir/trainer.cc.o.d"
  "libcascn_core.a"
  "libcascn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cascn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
