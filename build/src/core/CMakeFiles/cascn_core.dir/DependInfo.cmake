
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cascn_model.cc" "src/core/CMakeFiles/cascn_core.dir/cascn_model.cc.o" "gcc" "src/core/CMakeFiles/cascn_core.dir/cascn_model.cc.o.d"
  "/root/repo/src/core/cascn_path_model.cc" "src/core/CMakeFiles/cascn_core.dir/cascn_path_model.cc.o" "gcc" "src/core/CMakeFiles/cascn_core.dir/cascn_path_model.cc.o.d"
  "/root/repo/src/core/encoder.cc" "src/core/CMakeFiles/cascn_core.dir/encoder.cc.o" "gcc" "src/core/CMakeFiles/cascn_core.dir/encoder.cc.o.d"
  "/root/repo/src/core/streaming_predictor.cc" "src/core/CMakeFiles/cascn_core.dir/streaming_predictor.cc.o" "gcc" "src/core/CMakeFiles/cascn_core.dir/streaming_predictor.cc.o.d"
  "/root/repo/src/core/trainer.cc" "src/core/CMakeFiles/cascn_core.dir/trainer.cc.o" "gcc" "src/core/CMakeFiles/cascn_core.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/cascn_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/cascn_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/cascn_data.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cascn_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/cascn_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
