# Empty compiler generated dependencies file for cascn_core.
# This may be replaced when dependencies are built.
