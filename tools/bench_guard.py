#!/usr/bin/env python3
"""CI bench-guard: diff a BENCH_*.json report against its checked-in baseline.

Compares per-benchmark times from a fresh bench/micro_kernels run (see
obs/bench_report.h for the schema) against bench/baselines/. Raw nanoseconds
are meaningless across machines, so each benchmark is normalized by a
calibration benchmark from the *same* report before comparing: what is
guarded is the ratio

    time(benchmark) / time(calibration)

which cancels the host's overall speed. A regression in one kernel relative
to the others (the usual way a silent slowdown lands) moves its ratio; a
uniformly slower machine does not.

Usage:
    bench_guard.py --current BENCH_micro_kernels.json \
        --baseline bench/baselines/BENCH_micro_kernels.json \
        [--tolerance 0.5] [--calibration BM_DenseMatMul/64] [--update]

Exit status: 0 when every benchmark is within tolerance (or --update), 1 on
any regression, missing benchmark, or schema violation.
"""

import argparse
import json
import shutil
import sys

REQUIRED_TOP_LEVEL = [
    "schema_version",
    "name",
    "git_sha",
    "created_unix",
    "config",
    "wall_clock_seconds",
    "results",
]


def load_report(path):
    with open(path) as f:
        report = json.load(f)
    missing = [key for key in REQUIRED_TOP_LEVEL if key not in report]
    if missing:
        raise ValueError(f"{path}: missing schema keys {missing}")
    if report["schema_version"] != 1:
        raise ValueError(
            f"{path}: unsupported schema_version {report['schema_version']}")
    return report


def benchmark_times(report, path):
    """benchmark name -> real ns/iter, from the results array."""
    times = {}
    for row in report["results"]:
        if "benchmark" not in row or "real_ns_per_iter" not in row:
            raise ValueError(f"{path}: malformed result row {row}")
        times[row["benchmark"]] = float(row["real_ns_per_iter"])
    if not times:
        raise ValueError(f"{path}: no benchmark results")
    return times


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", required=True,
                        help="freshly produced BENCH_*.json")
    parser.add_argument("--baseline", required=True,
                        help="checked-in baseline BENCH_*.json")
    parser.add_argument("--tolerance", type=float, default=0.5,
                        help="allowed relative increase of the normalized "
                             "ratio (0.5 = 50%%)")
    parser.add_argument("--calibration", default="BM_DenseMatMul/64",
                        help="benchmark used to normalize out machine speed")
    parser.add_argument("--update", action="store_true",
                        help="refresh the baseline from --current and exit")
    parser.add_argument("--allow-missing", action="store_true",
                        help="skip baseline benchmarks absent from the "
                             "current run instead of failing (for CI runs "
                             "covering a reduced thread/worker list)")
    args = parser.parse_args()

    try:
        current = load_report(args.current)
        current_times = benchmark_times(current, args.current)
    except (OSError, ValueError, json.JSONDecodeError) as err:
        print(f"bench_guard: bad current report: {err}", file=sys.stderr)
        return 1

    if args.update:
        shutil.copyfile(args.current, args.baseline)
        print(f"bench_guard: baseline {args.baseline} refreshed from "
              f"{args.current} (git_sha {current['git_sha']})")
        return 0

    try:
        baseline = load_report(args.baseline)
        baseline_times = benchmark_times(baseline, args.baseline)
    except (OSError, ValueError, json.JSONDecodeError) as err:
        print(f"bench_guard: bad baseline: {err}", file=sys.stderr)
        return 1

    for report, times in ((args.current, current_times),
                          (args.baseline, baseline_times)):
        if args.calibration not in times:
            print(f"bench_guard: calibration benchmark {args.calibration!r} "
                  f"missing from {report}", file=sys.stderr)
            return 1

    missing = sorted(set(baseline_times) - set(current_times))
    if missing:
        if not args.allow_missing:
            print(f"bench_guard: benchmarks missing from current run: "
                  f"{missing}", file=sys.stderr)
            return 1
        print(f"bench_guard: skipping baseline benchmarks absent from "
              f"current run: {missing}")
        for name in missing:
            del baseline_times[name]
    added = sorted(set(current_times) - set(baseline_times))
    if added:
        print(f"bench_guard: NOTE: benchmarks not in baseline (run with "
              f"--update to include): {added}")

    current_cal = current_times[args.calibration]
    baseline_cal = baseline_times[args.calibration]
    print(f"bench_guard: calibration {args.calibration}: "
          f"current {current_cal:.0f} ns, baseline {baseline_cal:.0f} ns")
    print(f"{'benchmark':<34} {'base_ratio':>10} {'cur_ratio':>10} "
          f"{'delta':>8}  verdict")

    regressions = []
    for name in sorted(baseline_times):
        base_ratio = baseline_times[name] / baseline_cal
        cur_ratio = current_times[name] / current_cal
        delta = cur_ratio / base_ratio - 1.0 if base_ratio > 0 else 0.0
        ok = delta <= args.tolerance
        print(f"{name:<34} {base_ratio:>10.4f} {cur_ratio:>10.4f} "
              f"{delta:>+7.0%}  {'ok' if ok else 'REGRESSION'}")
        if not ok:
            regressions.append((name, delta))

    if regressions:
        print(f"\nbench_guard: {len(regressions)} regression(s) beyond "
              f"{args.tolerance:.0%} tolerance:", file=sys.stderr)
        for name, delta in regressions:
            print(f"  {name}: +{delta:.0%} vs baseline", file=sys.stderr)
        return 1
    print(f"\nbench_guard: all {len(baseline_times)} benchmarks within "
          f"{args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
