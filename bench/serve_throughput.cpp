// Serving throughput/latency vs. worker count.
//
// A fixed replay workload — generated cascades streamed through concurrent
// sessions (create, appends with periodic mid-stream predicts, final
// predict, close) — is driven against PredictionService instances with 1,
// 2, 4, and 8 workers. Reports requests/sec, latency percentiles from the
// service's own histogram, and batching counters, as JSON on stdout.
//
//   ./bench_serve_throughput [--sessions=400] [--clients=8]
//                            [--workers_list=1,2,4,8]
//                            [--shards=2] [--tenants=2]
//                            [--debug_port=N]
//
// --debug_port=N (or CASCN_DEBUG_PORT) starts the live introspection server
// on 127.0.0.1 for the duration of the bench (0 = ephemeral port) and turns
// the cluster section into an introspection drill: all six debug endpoints
// are fetched while the healthy run is under load, then a deterministic
// slow-shard stall trips the watchdog and the bench CHECKs that the dump it
// wrote names the stalled request's trace id. Left unset, the bench instead
// emits the "serve/debug_off" guard row and CHECKs that no debug-server
// thread was ever started — introspection must cost nothing when off.
//
// Cluster scenarios (--shards >= 2; 0 disables): the same replay workload
// is driven through a cluster::ShardRouter — consistent-hash routed shards
// with admission control — producing per-shard rows, an aggregate
// "cluster/shards:N" row, and a "cluster/p99" guard row. A deterministic
// overload run follows: the "cluster.slow_shard.0" fault slows shard 0
// while 2x the sessions are offered; admission control must shed
// (ResourceExhausted, distinct from queue-full Unavailable) while the
// accepted-request p99 stays within 2x the healthy cluster baseline —
// checked in-process and guarded by the "cluster/overload_p99" row.
//
// Also writes the machine-readable BENCH_serve_throughput.json
// (obs/bench_report.h); --bench_out=PATH overrides its location. Each
// result row carries "benchmark" ("serve/workers:N") and "real_ns_per_iter"
// (ns per request) so tools/bench_guard.py can diff runs against the
// checked-in baseline, calibration-normalized on the 1-worker row.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <numeric>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cluster/shard_router.h"
#include "common/cli_flags.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "data/cascade_generator.h"
#include "fault/fault.h"
#include "obs/bench_report.h"
#include "obs/debug_server.h"
#include "obs/shutdown.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "serve/checkpoint.h"
#include "serve/prediction_service.h"

namespace cascn::serve {
namespace {

constexpr double kWindow = 60.0;

std::vector<std::vector<AdoptionEvent>> MakeWorkload(int sessions) {
  GeneratorConfig config = WeiboLikeConfig();
  config.num_cascades = sessions * 2;
  config.user_universe = 500;
  config.max_size = 40;
  Rng rng(11);
  std::vector<std::vector<AdoptionEvent>> replays;
  for (const Cascade& cascade : GenerateCascades(config, rng)) {
    const Cascade prefix = cascade.Prefix(kWindow);
    if (prefix.size() < 3) continue;
    replays.push_back(prefix.events());
    if (static_cast<int>(replays.size()) == sessions) break;
  }
  return replays;
}

struct RunResult {
  double seconds = 0.0;
  uint64_t requests = 0;
  ServeMetrics::Snapshot snapshot;
};

/// Drives the replay workload. `predict_deadline_ms` > 0 attaches that
/// deadline to every async predict (the degraded-mode scenario); expired
/// predicts resolve with DeadlineExceeded, which the driver tolerates —
/// that is the degraded service surviving, not the benchmark failing.
RunResult RunWorkload(PredictionService& service,
                      const std::vector<std::vector<AdoptionEvent>>& replays,
                      int clients, double predict_deadline_ms = 0.0) {
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> drivers;
  for (int c = 0; c < clients; ++c) {
    drivers.emplace_back([&, c] {
      std::vector<size_t> mine;
      for (size_t i = static_cast<size_t>(c); i < replays.size();
           i += static_cast<size_t>(clients)) {
        mine.push_back(i);
        CASCN_CHECK(service
                        .CallCreate("s" + std::to_string(i),
                                    replays[i][0].user)
                        .status.ok());
      }
      // Round r appends event r to every session this client owns, then
      // fans the round's predictions out asynchronously: every session has
      // fresh events, so each predict is a real forward pass, and the
      // in-flight depth (one predict per live session) is what lets extra
      // workers help.
      std::vector<std::future<ServeResponse>> pending;
      bool progressed = true;
      for (size_t step = 1; progressed; ++step) {
        progressed = false;
        pending.clear();
        for (size_t i : mine) {
          if (step >= replays[i].size()) continue;
          progressed = true;
          const AdoptionEvent& event = replays[i][step];
          const std::string id = "s" + std::to_string(i);
          CASCN_CHECK(
              service.CallAppend(id, event.user, event.parents[0], event.time)
                  .status.ok());
          auto submitted = service.SubmitPredict(id, predict_deadline_ms);
          CASCN_CHECK(submitted.ok()) << submitted.status();
          pending.push_back(std::move(submitted).value());
        }
        for (auto& future : pending) {
          const ServeResponse response = future.get();
          CASCN_CHECK(response.status.ok() ||
                      response.status.code() == StatusCode::kDeadlineExceeded)
              << response.status;
        }
      }
      for (size_t i : mine)
        CASCN_CHECK(service.CallClose("s" + std::to_string(i)).status.ok());
    });
  }
  for (auto& d : drivers) d.join();
  const auto end = std::chrono::steady_clock::now();

  RunResult result;
  result.seconds = std::chrono::duration<double>(end - start).count();
  result.snapshot = service.metrics().TakeSnapshot();
  result.requests = result.snapshot.counter(Counter::kRequestsTotal);
  return result;
}

struct ClusterRunResult {
  double seconds = 0.0;
  uint64_t requests = 0;            // accepted into shard queues
  uint64_t deadline_exceeded = 0;   // summed across shards
  uint64_t driver_shed = 0;         // ResourceExhausted seen by drivers
  uint64_t driver_unavailable = 0;  // queue-full Unavailable seen by drivers
  cluster::ShardRouter::Snapshot snapshot;
};

/// The replay workload from RunWorkload, driven through a ShardRouter with
/// tenants assigned round-robin by session index. Admission rejections are
/// flow control, not failures: shed mutations are retried with a 1 ms
/// backoff (a replay client must not drop cascade events), shed predicts
/// are skipped (a lost forecast is recoverable), and both are counted.
ClusterRunResult RunClusterWorkload(
    cluster::ShardRouter& router,
    const std::vector<std::vector<AdoptionEvent>>& replays, int clients,
    int tenants, double predict_deadline_ms = 0.0) {
  std::atomic<uint64_t> shed{0};
  std::atomic<uint64_t> unavailable{0};
  const auto tenant_of = [tenants](size_t i) {
    return "tenant-" +
           std::to_string(i % static_cast<size_t>(std::max(1, tenants)));
  };
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> drivers;
  for (int c = 0; c < clients; ++c) {
    drivers.emplace_back([&, c] {
      const auto must = [&](auto&& op) {
        for (int attempt = 0;; ++attempt) {
          const ServeResponse response = op();
          if (response.status.ok()) return;
          if (response.status.code() == StatusCode::kResourceExhausted)
            shed.fetch_add(1, std::memory_order_relaxed);
          else if (response.status.code() == StatusCode::kUnavailable)
            unavailable.fetch_add(1, std::memory_order_relaxed);
          else
            CASCN_CHECK(false) << response.status;
          CASCN_CHECK(attempt < 10000)
              << "retry budget exhausted: " << response.status;
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      };
      std::vector<size_t> mine;
      for (size_t i = static_cast<size_t>(c); i < replays.size();
           i += static_cast<size_t>(clients)) {
        mine.push_back(i);
        must([&] {
          return router.CallCreate(tenant_of(i), "s" + std::to_string(i),
                                   replays[i][0].user);
        });
      }
      // Submission with the same flow-control policy as `must`, but
      // non-blocking: a rejected submit is retried until it enqueues, and
      // the future is collected for an end-of-round wait. Appends and
      // predicts both go out async — each shard's FIFO queue preserves
      // per-session order — so every client keeps 2x its session count in
      // flight and the offered load actually reaches the admission gate.
      const auto submit = [&](auto&& op) {
        for (int attempt = 0;; ++attempt) {
          auto submitted = op();
          if (submitted.ok()) return std::move(submitted).value();
          if (submitted.status().code() == StatusCode::kResourceExhausted)
            shed.fetch_add(1, std::memory_order_relaxed);
          else if (submitted.status().code() == StatusCode::kUnavailable)
            unavailable.fetch_add(1, std::memory_order_relaxed);
          else
            CASCN_CHECK(false) << submitted.status();
          CASCN_CHECK(attempt < 10000)
              << "retry budget exhausted: " << submitted.status();
          // Back off hard: a rejected client yielding the core is what lets
          // the shards drain (and is what a well-behaved client does).
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
      };
      std::vector<std::future<ServeResponse>> pending;
      const auto drain = [&pending] {
        for (auto& future : pending) {
          const ServeResponse response = future.get();
          CASCN_CHECK(response.status.ok() ||
                      response.status.code() == StatusCode::kDeadlineExceeded)
              << response.status;
        }
        pending.clear();
      };
      bool progressed = true;
      for (size_t step = 1; progressed; ++step) {
        progressed = false;
        for (size_t i : mine) {
          if (step >= replays[i].size()) continue;
          progressed = true;
          const AdoptionEvent& event = replays[i][step];
          const std::string id = "s" + std::to_string(i);
          pending.push_back(submit([&] {
            return router.SubmitAppend(tenant_of(i), id, event.user,
                                       event.parents[0], event.time);
          }));
          pending.push_back(submit([&] {
            return router.SubmitPredict(tenant_of(i), id, predict_deadline_ms);
          }));
          // Cap this client's in-flight window so queue pressure (and the
          // contention it adds on small hosts) doesn't scale with
          // --sessions: the offered load stays a property of the scenario,
          // not of the workload size.
          if (pending.size() >= 48) drain();
        }
        drain();
      }
      for (size_t i : mine)
        must([&] {
          return router.CallClose(tenant_of(i), "s" + std::to_string(i));
        });
    });
  }
  for (auto& d : drivers) d.join();
  const auto end = std::chrono::steady_clock::now();

  ClusterRunResult result;
  result.seconds = std::chrono::duration<double>(end - start).count();
  result.snapshot = router.TakeSnapshot();
  for (const auto& shard : result.snapshot.shards) {
    if (!shard.active) continue;
    result.requests += shard.metrics.counter(Counter::kRequestsTotal);
    result.deadline_exceeded +=
        shard.metrics.counter(Counter::kDeadlineExceeded);
  }
  result.driver_shed = shed.load();
  result.driver_unavailable = unavailable.load();
  return result;
}

int Main(int argc, char** argv) {
  CliFlags flags;
  CASCN_CHECK(flags.Parse(argc, argv).ok());
  const int sessions = static_cast<int>(flags.GetInt("sessions", 400));
  const int clients = static_cast<int>(flags.GetInt("clients", 8));
  const int shards = static_cast<int>(flags.GetInt("shards", 2));
  const int tenants = static_cast<int>(flags.GetInt("tenants", 2));
  const std::string workers_list = flags.GetString("workers_list", "1,2,4,8");
  // --trace_out=PATH records the healthy cluster run with request tracing
  // enabled and writes the Chrome trace there (open in chrome://tracing;
  // flow arrows link each request's spans across threads).
  const std::string trace_out = flags.GetString("trace_out", "");
  // --flight_dir=DIR arms the cluster runs' flight recorders (per-shard +
  // router JSON-lines dumps) and dumps them on demand after each run.
  const std::string flight_dir = flags.GetString("flight_dir", "");
  // --debug_port=N starts the introspection server; defaults to the
  // CASCN_DEBUG_PORT environment variable, -1 (off) when neither is set.
  const int debug_port =
      static_cast<int>(flags.GetInt("debug_port", obs::DebugServer::EnvPort()));
  std::string bench_out = flags.GetString("bench_out", "");
  if (bench_out.empty())
    bench_out = obs::BenchReport::DefaultPath("serve_throughput");
  const auto bench_start = std::chrono::steady_clock::now();

  // One tiny deterministic model checkpoint shared by all runs.
  CascnConfig config;
  config.padded_size = 16;
  config.hidden_dim = 6;
  config.cheb_order = 2;
  CascnModel model(config);
  const std::string ckpt = "/tmp/cascn_bench_serve.ckpt";
  CASCN_CHECK(SaveCascnCheckpoint(ckpt, model).ok());

  const auto replays = MakeWorkload(sessions);
  const unsigned cores = std::thread::hardware_concurrency();
  std::fprintf(stderr,
               "[serve_throughput] %zu sessions, %d clients, %u cores\n",
               replays.size(), clients, cores);
  if (cores < 2)
    std::fprintf(stderr,
                 "[serve_throughput] WARNING: single-core host — worker "
                 "counts beyond 1 cannot speed up compute-bound predicts\n");

  obs::BenchReport report("serve_throughput");
  report.AddConfig("sessions", static_cast<int64_t>(replays.size()))
      .AddConfig("clients", clients)
      .AddConfig("workers_list", workers_list)
      .AddConfig("hardware_concurrency", static_cast<int64_t>(cores));

  // Live introspection server, opt-in. allow_quit is deliberate here: the
  // bench doubles as the end-to-end exercise of the quit endpoint's gating.
  std::unique_ptr<obs::DebugServer> debug_server;
  if (debug_port >= 0) {
    obs::DebugServerOptions server_options;
    server_options.port = debug_port;
    server_options.allow_quit = true;
    auto started = obs::DebugServer::Start(server_options);
    CASCN_CHECK(started.ok()) << started.status();
    debug_server = std::move(started).value();
    debug_server->AddConfig("bench", "serve_throughput");
    debug_server->AddConfig("sessions", std::to_string(replays.size()));
    debug_server->AddConfig("clients", std::to_string(clients));
  }

  std::vector<int> worker_counts;
  for (const std::string& field : Split(workers_list, ',')) {
    const long value = std::strtol(field.c_str(), nullptr, 10);
    CASCN_CHECK(value >= 1) << "bad --workers_list entry: " << field;
    worker_counts.push_back(static_cast<int>(value));
  }
  CASCN_CHECK(!worker_counts.empty());

  std::string results_json;
  // Emits one run's stderr line, report rows (throughput plus a "p95:"
  // guard row so latency-tail regressions trip bench_guard, not just
  // throughput ones), and its entry in the human-readable results array.
  auto record_run = [&](const std::string& label, int workers,
                        const RunResult& run, const std::string& obs_json) {
    const double rps =
        run.seconds > 0.0 ? static_cast<double>(run.requests) / run.seconds
                          : 0.0;
    const uint64_t expired = run.snapshot.counter(Counter::kDeadlineExceeded);
    std::fprintf(stderr,
                 "[serve_throughput] %s requests=%llu seconds=%.3f "
                 "rps=%.0f p50=%.0fus p95=%.0fus p99=%.0fus batched=%llu "
                 "deadline_exceeded=%llu health=%s\n",
                 label.c_str(), static_cast<unsigned long long>(run.requests),
                 run.seconds, rps, run.snapshot.latency_p50_us,
                 run.snapshot.latency_p95_us, run.snapshot.latency_p99_us,
                 static_cast<unsigned long long>(
                     run.snapshot.counter(Counter::kBatchedRequests)),
                 static_cast<unsigned long long>(expired),
                 std::string(HealthName(run.snapshot.health)).c_str());

    const double ns_per_request =
        run.requests > 0 ? run.seconds * 1e9 / static_cast<double>(run.requests)
                         : 0.0;
    report.AddResult(
        obs::JsonObjectBuilder()
            .Add("benchmark", "serve/" + label)
            .Add("real_ns_per_iter", ns_per_request)
            .Add("workers", workers)
            .Add("requests", run.requests)
            .Add("seconds", run.seconds)
            .Add("requests_per_sec", rps)
            .Add("p50_us", run.snapshot.latency_p50_us)
            .Add("p95_us", run.snapshot.latency_p95_us)
            .Add("p99_us", run.snapshot.latency_p99_us)
            .Add("batches", run.snapshot.counter(Counter::kBatches))
            .Add("batched_requests",
                 run.snapshot.counter(Counter::kBatchedRequests))
            .Add("deadline_exceeded", expired)
            .Build());
    report.AddResult(
        obs::JsonObjectBuilder()
            .Add("benchmark", "serve/p95:" + label)
            .Add("real_ns_per_iter", run.snapshot.latency_p95_us * 1000.0)
            .Build());

    char entry[704];
    std::snprintf(
        entry, sizeof(entry),
        "%s\n    {\"run\": \"%s\", \"workers\": %d, \"requests\": %llu, "
        "\"seconds\": %.4f, "
        "\"requests_per_sec\": %.1f, \"p50_us\": %.1f, \"p95_us\": %.1f, "
        "\"p99_us\": %.1f, "
        "\"batches\": %llu, \"batched_requests\": %llu, "
        "\"deadline_exceeded\": %llu, \"obs\": ",
        results_json.empty() ? "" : ",", label.c_str(), workers,
        static_cast<unsigned long long>(run.requests), run.seconds, rps,
        run.snapshot.latency_p50_us, run.snapshot.latency_p95_us,
        run.snapshot.latency_p99_us,
        static_cast<unsigned long long>(
            run.snapshot.counter(Counter::kBatches)),
        static_cast<unsigned long long>(
            run.snapshot.counter(Counter::kBatchedRequests)),
        static_cast<unsigned long long>(expired));
    results_json += entry;
    results_json += obs_json;
    results_json += "}";
  };

  auto make_options = [&](int workers) {
    ServiceOptions options;
    options.num_workers = workers;
    options.queue_capacity = 16384;
    options.max_batch = 16;
    options.sessions.capacity = replays.size() + 16;
    options.sessions.observation_window = kWindow;
    return options;
  };

  for (int workers : worker_counts) {
    auto service =
        PredictionService::CreateFromCheckpoint(make_options(workers), ckpt);
    CASCN_CHECK(service.ok()) << service.status();

    const RunResult run = RunWorkload(**service, replays, clients);
    (*service)->Shutdown();
    // Unified observability snapshot for this run: queue-depth gauge and
    // batch-size histogram maintained by the service, plus the serve
    // counters bridged in.
    ExportToRegistry(run.snapshot, (*service)->registry());
    record_run("workers:" + std::to_string(workers), workers, run,
               (*service)->registry().JsonSnapshot());
    if (workers == 2) {
      // Guard row: serve throughput with tracing disabled. The request
      // context, flight-recorder append, and SLI hooks are always on, so
      // this row is what catches the hot-path cost of the observability
      // plumbing itself creeping up.
      CASCN_CHECK(!obs::Tracer::Get().enabled())
          << "tracing_off row measured with tracing enabled";
      report.AddResult(
          obs::JsonObjectBuilder()
              .Add("benchmark", "serve/tracing_off")
              .Add("real_ns_per_iter",
                   run.requests > 0
                       ? run.seconds * 1e9 / static_cast<double>(run.requests)
                       : 0.0)
              .Build());
      if (debug_port < 0) {
        // Guard row: serve throughput with the introspection control plane
        // never brought up. The CHECKs are the contract — no --debug_port
        // means no accept thread and no span sampling, so a regression here
        // is hot-path cost leaking out of an "off" debug server.
        CASCN_CHECK(obs::DebugServer::servers_started() == 0)
            << "debug server started without --debug_port";
        CASCN_CHECK(!obs::Tracer::Get().sampling())
            << "span sampling enabled without --debug_port";
        report.AddResult(
            obs::JsonObjectBuilder()
                .Add("benchmark", "serve/debug_off")
                .Add("real_ns_per_iter",
                     run.requests > 0
                         ? run.seconds * 1e9 /
                               static_cast<double>(run.requests)
                         : 0.0)
                .Build());
      }
    }
  }

  // Degraded-mode scenario: a slice of predicts stalls inside the worker
  // (the "serve.slow_predict" fault, armed deterministically) while every
  // async predict carries a deadline. The service must keep draining —
  // expired requests fail fast with DeadlineExceeded instead of piling onto
  // workers — and the p95 guard row keeps the degraded latency tail honest.
  {
    const int workers = 2;
    auto service =
        PredictionService::CreateFromCheckpoint(make_options(workers), ckpt);
    CASCN_CHECK(service.ok()) << service.status();
    CASCN_CHECK(fault::FaultRegistry::Get()
                    .Configure("serve.slow_predict=every:16@2")
                    .ok());
    const RunResult run =
        RunWorkload(**service, replays, clients, /*predict_deadline_ms=*/10.0);
    fault::FaultRegistry::Get().Clear();
    (*service)->Shutdown();
    ExportToRegistry(run.snapshot, (*service)->registry());
    record_run("degraded", workers, run,
               (*service)->registry().JsonSnapshot());
  }

  // Sharded cluster scenarios (--shards=0 disables). Latency percentiles
  // here are merged across shards from the router snapshot; the driver
  // counters separate admission sheds (ResourceExhausted) from queue-full
  // backpressure (Unavailable).
  if (shards >= 2) {
    // Emits one cluster run: stderr line, aggregate row, optional per-shard
    // rows, a p99 guard row under `guard`, and the human-readable entry.
    auto record_cluster_run = [&](const std::string& label,
                                  const std::string& guard,
                                  const ClusterRunResult& run,
                                  bool per_shard_rows) {
      const double rps =
          run.seconds > 0.0 ? static_cast<double>(run.requests) / run.seconds
                            : 0.0;
      std::fprintf(
          stderr,
          "[serve_throughput] %s requests=%llu seconds=%.3f rps=%.0f "
          "p50=%.0fus p95=%.0fus p99=%.0fus shed=%llu unavailable=%llu "
          "deadline_exceeded=%llu health=%s\n",
          label.c_str(), static_cast<unsigned long long>(run.requests),
          run.seconds, rps, run.snapshot.latency_p50_us,
          run.snapshot.latency_p95_us, run.snapshot.latency_p99_us,
          static_cast<unsigned long long>(run.driver_shed),
          static_cast<unsigned long long>(run.driver_unavailable),
          static_cast<unsigned long long>(run.deadline_exceeded),
          std::string(HealthName(run.snapshot.health)).c_str());
      const double ns_per_request =
          run.requests > 0
              ? run.seconds * 1e9 / static_cast<double>(run.requests)
              : 0.0;
      report.AddResult(obs::JsonObjectBuilder()
                           .Add("benchmark", label)
                           .Add("real_ns_per_iter", ns_per_request)
                           .Add("shards", shards)
                           .Add("tenants", tenants)
                           .Add("requests", run.requests)
                           .Add("seconds", run.seconds)
                           .Add("requests_per_sec", rps)
                           .Add("p50_us", run.snapshot.latency_p50_us)
                           .Add("p95_us", run.snapshot.latency_p95_us)
                           .Add("p99_us", run.snapshot.latency_p99_us)
                           .Add("shed", run.driver_shed)
                           .Add("unavailable", run.driver_unavailable)
                           .Add("deadline_exceeded", run.deadline_exceeded)
                           .Build());
      if (per_shard_rows) {
        for (const auto& shard : run.snapshot.shards) {
          if (!shard.active) continue;
          const uint64_t shard_requests =
              shard.metrics.counter(Counter::kRequestsTotal);
          report.AddResult(
              obs::JsonObjectBuilder()
                  .Add("benchmark",
                       "cluster/shard:" + std::to_string(shard.shard_id))
                  .Add("real_ns_per_iter",
                       shard_requests > 0
                           ? run.seconds * 1e9 /
                                 static_cast<double>(shard_requests)
                           : 0.0)
                  .Add("requests", shard_requests)
                  .Add("sessions", static_cast<uint64_t>(shard.num_sessions))
                  .Add("p99_us", shard.metrics.latency_p99_us)
                  .Build());
        }
      }
      report.AddResult(obs::JsonObjectBuilder()
                           .Add("benchmark", guard)
                           .Add("real_ns_per_iter",
                                run.snapshot.latency_p99_us * 1000.0)
                           .Build());
      char entry[512];
      std::snprintf(
          entry, sizeof(entry),
          "%s\n    {\"run\": \"%s\", \"shards\": %d, \"requests\": %llu, "
          "\"seconds\": %.4f, \"requests_per_sec\": %.1f, \"p50_us\": %.1f, "
          "\"p95_us\": %.1f, \"p99_us\": %.1f, \"shed\": %llu, "
          "\"unavailable\": %llu, \"deadline_exceeded\": %llu}",
          results_json.empty() ? "" : ",", label.c_str(), shards,
          static_cast<unsigned long long>(run.requests), run.seconds, rps,
          run.snapshot.latency_p50_us, run.snapshot.latency_p95_us,
          run.snapshot.latency_p99_us,
          static_cast<unsigned long long>(run.driver_shed),
          static_cast<unsigned long long>(run.driver_unavailable),
          static_cast<unsigned long long>(run.deadline_exceeded));
      results_json += entry;
    };

    // Healthy cluster baseline at 1x load. When --trace_out is set this run
    // doubles as the tracing demo: every request carries a trace id minted
    // at the router, and the written Chrome trace links each request's
    // spans across the client and worker threads with flow events.
    cluster::ShardRouterOptions healthy_opts;
    healthy_opts.num_shards = shards;
    healthy_opts.shard = make_options(/*workers=*/2);
    healthy_opts.flight_dir = flight_dir;
    auto router = cluster::ShardRouter::CreateFromCheckpoint(healthy_opts,
                                                             ckpt);
    CASCN_CHECK(router.ok()) << router.status();
    if (debug_server) (*router)->RegisterDebugEndpoints(*debug_server);
    // With the debug server up, fetch every endpoint mid-run: the server
    // must answer with real payloads while the workers are saturated, not
    // just on an idle process. (If the workload finishes before the checker
    // wakes, the fetches still validate payloads — just not under load.)
    std::thread endpoint_checker;
    if (debug_server) {
      endpoint_checker = std::thread([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
        const auto fetch = [&](const std::string& path) {
          auto result = obs::HttpGet(debug_server->port(), path);
          CASCN_CHECK(result.ok()) << path << ": " << result.status();
          CASCN_CHECK(result->status == 200)
              << path << " -> HTTP " << result->status;
          return result->body;
        };
        CASCN_CHECK(fetch("/statusz").find("[cluster]") != std::string::npos)
            << "/statusz missing the router's status section";
        CASCN_CHECK(fetch("/metricsz").find("# TYPE") != std::string::npos)
            << "/metricsz text exposition missing OpenMetrics headers";
        const std::string metrics_json = fetch("/metricsz?format=json");
        CASCN_CHECK(metrics_json.find("\"counters\"") != std::string::npos &&
                    metrics_json.find("cluster_health") != std::string::npos)
            << "/metricsz?format=json missing the router's exported series";
        CASCN_CHECK(fetch("/tracez").find("\"span_stats\"") !=
                    std::string::npos)
            << "/tracez missing span statistics";
        CASCN_CHECK(fetch("/flightz").find("flight_dump") != std::string::npos)
            << "/flightz missing flight-recorder dump headers";
        CASCN_CHECK(fetch("/sloz").find("\"tenants\"") != std::string::npos)
            << "/sloz missing the per-tenant SLO table";
        std::fprintf(stderr,
                     "[serve_throughput] debug endpoints answered under load "
                     "(port %d)\n",
                     debug_server->port());
      });
    }
    if (!trace_out.empty()) obs::Tracer::Get().Enable();
    const ClusterRunResult healthy =
        RunClusterWorkload(**router, replays, clients, tenants);
    if (endpoint_checker.joinable()) endpoint_checker.join();
    if (!trace_out.empty()) {
      obs::Tracer::Get().Disable();
      CASCN_CHECK(obs::Tracer::Get().WriteChromeTrace(trace_out).ok());
      std::fprintf(stderr,
                   "[serve_throughput] chrome trace written to %s "
                   "(%zu events, %llu spans dropped)\n",
                   trace_out.c_str(), obs::Tracer::Get().event_count(),
                   static_cast<unsigned long long>(
                       obs::Tracer::Get().dropped_count()));
    }
    CASCN_CHECK((*router)->ClusterHealth() == Health::kHealthy);
    if (!flight_dir.empty())
      CASCN_CHECK((*router)->DumpFlightRecorders("bench_on_demand").ok());
    record_cluster_run("cluster/shards:" + std::to_string(shards),
                       "cluster/p99", healthy, /*per_shard_rows=*/true);
    // Guard row: the healthy run above used default router options, so the
    // resilience control plane was never constructed — the CHECK is that
    // contract, and the row is what catches the disabled plane's cost (one
    // relaxed pointer load per request) creeping up.
    CASCN_CHECK((*router)->resilience() == nullptr)
        << "resilience control plane constructed without being enabled";
    report.AddResult(
        obs::JsonObjectBuilder()
            .Add("benchmark", "cluster/resilience_off")
            .Add("real_ns_per_iter",
                 healthy.requests > 0
                     ? healthy.seconds * 1e9 /
                           static_cast<double>(healthy.requests)
                     : 0.0)
            .Build());

    // Deterministic stall drill (debug server only): wedge one shard of a
    // dedicated drill router and prove the watchdog chain end to end — the
    // stall is declared, the self-dump lands on disk, and it names the
    // trace id of the request that was actually stuck on the worker.
    if (debug_server) {
      cluster::ShardRouterOptions drill_opts;
      drill_opts.num_shards = 2;
      drill_opts.shard = make_options(/*workers=*/1);
      // One request per micro-batch: the pile-up behind the wedged predict
      // must stay IN the queue (visibly busy) rather than being drained
      // into a single batch, or the watchdog has nothing to see.
      drill_opts.shard.max_batch = 1;
      auto drill = cluster::ShardRouter::CreateFromCheckpoint(drill_opts, ckpt);
      CASCN_CHECK(drill.ok()) << drill.status();
      CASCN_CHECK((*drill)->CallCreate("drill", "wedged", 1).status.ok());
      CASCN_CHECK(
          (*drill)->CallAppend("drill", "wedged", 2, 0, 1.0).status.ok());
      const int victim = (*drill)->ShardOf("wedged");
      CASCN_CHECK(victim >= 0);

      obs::WatchdogOptions watchdog_options;
      watchdog_options.poll_ms = 5.0;
      watchdog_options.stall_ms = 50.0;
      watchdog_options.anomaly_dir = "/tmp";
      obs::Watchdog watchdog(watchdog_options);
      (*drill)->RegisterWatchdogTargets(watchdog);
      watchdog.Start();

      CASCN_CHECK(fault::FaultRegistry::Get()
                      .Configure(cluster::SlowShardFaultPoint(victim) +
                                 "=always@500")
                      .ok());
      std::vector<std::future<ServeResponse>> wedged;
      for (int i = 0; i < 3; ++i) {
        auto submitted = (*drill)->SubmitPredict("drill", "wedged");
        CASCN_CHECK(submitted.ok()) << submitted.status();
        wedged.push_back(std::move(submitted).value());
      }
      const auto drill_deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(20);
      while (watchdog.stalls_total() == 0 &&
             std::chrono::steady_clock::now() < drill_deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      CASCN_CHECK(watchdog.stalls_total() >= 1)
          << "watchdog never declared the drill stall";
      fault::FaultRegistry::Get().Clear();
      // FIFO + max_batch=1: the first submit is the predict that was on the
      // worker when the stall fired, so its trace id is the one the dump's
      // open-span table must carry.
      const ServeResponse stalled = wedged[0].get();
      CASCN_CHECK(stalled.status.ok()) << stalled.status;
      for (size_t i = 1; i < wedged.size(); ++i) (void)wedged[i].get();
      watchdog.Stop();

      const std::string dump_path = watchdog.last_dump_path();
      CASCN_CHECK(!dump_path.empty()) << "stall fired but wrote no dump";
      std::ifstream dump(dump_path);
      CASCN_CHECK(dump.good()) << "cannot read watchdog dump " << dump_path;
      std::stringstream dump_body;
      dump_body << dump.rdbuf();
      const std::string stalled_trace = StrFormat(
          "%llx", static_cast<unsigned long long>(stalled.trace_id));
      CASCN_CHECK(dump_body.str().find(stalled_trace) != std::string::npos)
          << "watchdog dump " << dump_path
          << " does not name the stalled request's trace id "
          << stalled_trace;
      std::fprintf(stderr,
                   "[serve_throughput] watchdog drill: stall on shard %d "
                   "detected, dump %s names trace %s\n",
                   victim, dump_path.c_str(), stalled_trace.c_str());

      // Last endpoint: the opt-in quit answers 200 and latches the flag.
      auto quit = obs::HttpGet(debug_server->port(), "/quitquitquit");
      CASCN_CHECK(quit.ok()) << quit.status();
      CASCN_CHECK(quit->status == 200) << "/quitquitquit -> " << quit->status;
      CASCN_CHECK(debug_server->quit_requested());
      drill->reset();
    }

    // The debug handlers registered above capture the healthy router; stop
    // the server before the router goes away.
    if (debug_server) debug_server->Stop();
    router->reset();

    // Deterministic overload: shard 0 is slowed by the shard-scoped fault
    // while 2x the sessions are offered against shrunken shard queues.
    // Admission control must shed with ResourceExhausted before the slow
    // shard's queue collapses into Unavailable for everyone, and the
    // accepted-request p99 (execution time, merged across shards) must stay
    // within 2x the healthy baseline — the slow shard hurts its own queue,
    // not the latency of the requests the cluster chose to accept.
    const auto overload_replays = MakeWorkload(sessions * 2);
    cluster::ShardRouterOptions overload_opts;
    overload_opts.num_shards = shards;
    // One worker per shard: the scenario is about queue pressure, and extra
    // worker threads on an oversubscribed host only add preemption noise to
    // the execution-time percentiles the CHECK below compares.
    overload_opts.shard = make_options(/*workers=*/1);
    // Queue small enough that the drivers' bounded in-flight window (48 ops
    // per client) pushes past the shed threshold on every round, at any
    // --sessions.
    overload_opts.shard.queue_capacity = 32;
    overload_opts.shard.sessions.capacity = overload_replays.size() + 16;
    // Shed early (25% of capacity): the point of the scenario is that
    // admission turns excess load into ResourceExhausted *before* queues
    // deepen enough to distort the accepted requests' latency.
    overload_opts.admission.shed_queue_fraction = 0.25;
    overload_opts.flight_dir = flight_dir;
    auto overload_router =
        cluster::ShardRouter::CreateFromCheckpoint(overload_opts, ckpt);
    CASCN_CHECK(overload_router.ok()) << overload_router.status();
    CASCN_CHECK(fault::FaultRegistry::Get()
                    .Configure(cluster::SlowShardFaultPoint(0) + "=every:256@2")
                    .ok());
    const ClusterRunResult overload = RunClusterWorkload(
        **overload_router, overload_replays, std::min(clients, 2), tenants,
        /*predict_deadline_ms=*/50.0);
    fault::FaultRegistry::Get().Clear();
    CASCN_CHECK(overload.snapshot.total_shed > 0)
        << "overload scenario shed nothing: admission control never engaged";
    // The floor keeps the bound meaningful when the healthy p99 is down in
    // scheduling-noise territory: on oversubscribed hosts (this bench's
    // driver threads timeslice with the shard workers) a preempted worker
    // records wall time in the low milliseconds regardless of load.
    const double p99_budget_us =
        2.0 * std::max(healthy.snapshot.latency_p99_us, 2500.0);
    CASCN_CHECK(overload.snapshot.latency_p99_us <= p99_budget_us)
        << "accepted-request p99 " << overload.snapshot.latency_p99_us
        << "us exceeds 2x healthy baseline ("
        << healthy.snapshot.latency_p99_us << "us)";
    if (!flight_dir.empty())
      CASCN_CHECK(
          (*overload_router)->DumpFlightRecorders("bench_on_demand").ok());
    record_cluster_run("cluster/overload", "cluster/overload_p99", overload,
                       /*per_shard_rows=*/false);
    overload_router->reset();

    // Hedged-read scenario: the resilience control plane absorbs one
    // always-slow shard. Latency here is CLIENT-observed wall time per
    // predict — the shard-side histograms measure execution time, and a
    // hedge rescue is invisible there: the win happens at the caller, when
    // the next ring candidate's replayed predict answers first.
    {
      cluster::ShardRouterOptions hedge_opts;
      hedge_opts.num_shards = shards;
      hedge_opts.shard = make_options(/*workers=*/2);
      hedge_opts.resilience.enabled = true;
      hedge_opts.flight_dir = flight_dir;
      auto hedge_router =
          cluster::ShardRouter::CreateFromCheckpoint(hedge_opts, ckpt);
      CASCN_CHECK(hedge_router.ok()) << hedge_router.status();
      cluster::ResilienceControl* rc = (*hedge_router)->resilience();
      CASCN_CHECK(rc != nullptr);
      // Seeding predict per session: warms each shard's rolling latency
      // histogram (the hedge trigger's p95 feed) and the replay mirror the
      // hedge dispatch replays from.
      for (size_t i = 0; i < replays.size(); ++i) {
        const std::string id = "s" + std::to_string(i);
        CASCN_CHECK((*hedge_router)
                        ->CallCreate("", id, replays[i][0].user)
                        .status.ok());
        for (size_t step = 1; step < replays[i].size(); ++step) {
          const AdoptionEvent& event = replays[i][step];
          CASCN_CHECK((*hedge_router)
                          ->CallAppend("", id, event.user, event.parents[0],
                                       event.time)
                          .status.ok());
        }
        CASCN_CHECK((*hedge_router)->CallPredict("", id).status.ok());
      }
      const auto sweep = [&](std::vector<double>& out_us) {
        out_us.clear();
        out_us.reserve(replays.size());
        for (size_t i = 0; i < replays.size(); ++i) {
          const auto t0 = std::chrono::steady_clock::now();
          const ServeResponse r =
              (*hedge_router)->CallPredict("", "s" + std::to_string(i));
          CASCN_CHECK(r.status.ok()) << r.status;
          out_us.push_back(std::chrono::duration<double, std::micro>(
                               std::chrono::steady_clock::now() - t0)
                               .count());
        }
      };
      const auto percentile = [](std::vector<double> v, int pct) {
        CASCN_CHECK(!v.empty());
        std::sort(v.begin(), v.end());
        return v[std::min(v.size() - 1, v.size() * pct / 100)];
      };
      std::vector<double> healthy_us, hedged_us;
      sweep(healthy_us);
      const double healthy_p99_us = percentile(healthy_us, 99);
      // One shard turns always-slow at 5x the healthy client p99: slow
      // enough that an unhedged read through it would blow any latency
      // budget, so a bounded hedged p99 below can only mean the hedges won.
      const double slow_ms =
          std::max(5.0, 5.0 * healthy_p99_us / 1000.0);
      CASCN_CHECK(fault::FaultRegistry::Get()
                      .Configure(cluster::SlowShardFaultPoint(0) +
                                 StrFormat("=always@%.0f", slow_ms))
                      .ok());
      sweep(hedged_us);
      fault::FaultRegistry::Get().Clear();
      const double hedged_p99_us = percentile(hedged_us, 99);
      CASCN_CHECK(rc->hedges_launched() >= 1 && rc->hedges_won() >= 1)
          << "slow-shard sweep launched " << rc->hedges_launched()
          << " hedges, won " << rc->hedges_won();
      // The floor keeps the 1.5x bound meaningful when the healthy client
      // p99 sits in scheduling-noise territory on oversubscribed hosts.
      const double hedge_budget_us = 1.5 * std::max(healthy_p99_us, 4000.0);
      CASCN_CHECK(hedged_p99_us <= hedge_budget_us)
          << "hedged client p99 " << hedged_p99_us
          << "us exceeds 1.5x healthy client baseline (" << healthy_p99_us
          << "us) with shard 0 slowed to " << slow_ms << "ms";
      std::fprintf(
          stderr,
          "[serve_throughput] cluster/hedging slow_shard=%.0fms "
          "client_p99_healthy=%.0fus client_p99_hedged=%.0fus "
          "hedges_launched=%llu hedges_won=%llu\n",
          slow_ms, healthy_p99_us, hedged_p99_us,
          static_cast<unsigned long long>(rc->hedges_launched()),
          static_cast<unsigned long long>(rc->hedges_won()));
      const double mean_ns =
          hedged_us.empty()
              ? 0.0
              : std::accumulate(hedged_us.begin(), hedged_us.end(), 0.0) *
                    1000.0 / static_cast<double>(hedged_us.size());
      report.AddResult(obs::JsonObjectBuilder()
                           .Add("benchmark", "cluster/hedging")
                           .Add("real_ns_per_iter", mean_ns)
                           .Add("shards", shards)
                           .Add("slow_shard_ms", slow_ms)
                           .Add("client_p99_healthy_us", healthy_p99_us)
                           .Add("client_p99_hedged_us", hedged_p99_us)
                           .Add("hedges_launched", rc->hedges_launched())
                           .Add("hedges_won", rc->hedges_won())
                           .Build());
      report.AddResult(obs::JsonObjectBuilder()
                           .Add("benchmark", "cluster/hedging_p99")
                           .Add("real_ns_per_iter", hedged_p99_us * 1000.0)
                           .Build());
      char entry[256];
      std::snprintf(
          entry, sizeof(entry),
          "%s\n    {\"run\": \"cluster/hedging\", \"slow_shard_ms\": %.0f, "
          "\"client_p99_healthy_us\": %.1f, \"client_p99_hedged_us\": %.1f, "
          "\"hedges_launched\": %llu, \"hedges_won\": %llu}",
          results_json.empty() ? "" : ",", slow_ms, healthy_p99_us,
          hedged_p99_us,
          static_cast<unsigned long long>(rc->hedges_launched()),
          static_cast<unsigned long long>(rc->hedges_won()));
      results_json += entry;
      hedge_router->reset();
    }
  }

  std::printf(
      "{\n  \"bench\": \"serve_throughput\",\n  \"sessions\": %zu,\n"
      "  \"clients\": %d,\n  \"hardware_concurrency\": %u,\n"
      "  \"results\": [%s\n  ]\n}\n",
      replays.size(), clients, cores, results_json.c_str());

  report
      .SetWallClockSeconds(std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - bench_start)
                               .count())
      .CaptureProfile();
  const Status write_status = report.WriteFile(bench_out);
  CASCN_CHECK(write_status.ok()) << write_status;
  std::fprintf(stderr, "[serve_throughput] benchmark report written to %s\n",
               bench_out.c_str());
  CASCN_CHECK(obs::ShutdownDump().ok());
  return 0;
}

}  // namespace
}  // namespace cascn::serve

int main(int argc, char** argv) { return cascn::serve::Main(argc, argv); }
