// Serving throughput/latency vs. worker count.
//
// A fixed replay workload — generated cascades streamed through concurrent
// sessions (create, appends with periodic mid-stream predicts, final
// predict, close) — is driven against PredictionService instances with 1,
// 2, 4, and 8 workers. Reports requests/sec, latency percentiles from the
// service's own histogram, and batching counters, as JSON on stdout.
//
//   ./bench_serve_throughput [--sessions=400] [--clients=8]
//                            [--workers_list=1,2,4,8]
//
// Also writes the machine-readable BENCH_serve_throughput.json
// (obs/bench_report.h); --bench_out=PATH overrides its location. Each
// result row carries "benchmark" ("serve/workers:N") and "real_ns_per_iter"
// (ns per request) so tools/bench_guard.py can diff runs against the
// checked-in baseline, calibration-normalized on the 1-worker row.

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/cli_flags.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "data/cascade_generator.h"
#include "fault/fault.h"
#include "obs/bench_report.h"
#include "obs/shutdown.h"
#include "obs/telemetry.h"
#include "serve/checkpoint.h"
#include "serve/prediction_service.h"

namespace cascn::serve {
namespace {

constexpr double kWindow = 60.0;

std::vector<std::vector<AdoptionEvent>> MakeWorkload(int sessions) {
  GeneratorConfig config = WeiboLikeConfig();
  config.num_cascades = sessions * 2;
  config.user_universe = 500;
  config.max_size = 40;
  Rng rng(11);
  std::vector<std::vector<AdoptionEvent>> replays;
  for (const Cascade& cascade : GenerateCascades(config, rng)) {
    const Cascade prefix = cascade.Prefix(kWindow);
    if (prefix.size() < 3) continue;
    replays.push_back(prefix.events());
    if (static_cast<int>(replays.size()) == sessions) break;
  }
  return replays;
}

struct RunResult {
  double seconds = 0.0;
  uint64_t requests = 0;
  ServeMetrics::Snapshot snapshot;
};

/// Drives the replay workload. `predict_deadline_ms` > 0 attaches that
/// deadline to every async predict (the degraded-mode scenario); expired
/// predicts resolve with DeadlineExceeded, which the driver tolerates —
/// that is the degraded service surviving, not the benchmark failing.
RunResult RunWorkload(PredictionService& service,
                      const std::vector<std::vector<AdoptionEvent>>& replays,
                      int clients, double predict_deadline_ms = 0.0) {
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> drivers;
  for (int c = 0; c < clients; ++c) {
    drivers.emplace_back([&, c] {
      std::vector<size_t> mine;
      for (size_t i = static_cast<size_t>(c); i < replays.size();
           i += static_cast<size_t>(clients)) {
        mine.push_back(i);
        CASCN_CHECK(service
                        .CallCreate("s" + std::to_string(i),
                                    replays[i][0].user)
                        .status.ok());
      }
      // Round r appends event r to every session this client owns, then
      // fans the round's predictions out asynchronously: every session has
      // fresh events, so each predict is a real forward pass, and the
      // in-flight depth (one predict per live session) is what lets extra
      // workers help.
      std::vector<std::future<ServeResponse>> pending;
      bool progressed = true;
      for (size_t step = 1; progressed; ++step) {
        progressed = false;
        pending.clear();
        for (size_t i : mine) {
          if (step >= replays[i].size()) continue;
          progressed = true;
          const AdoptionEvent& event = replays[i][step];
          const std::string id = "s" + std::to_string(i);
          CASCN_CHECK(
              service.CallAppend(id, event.user, event.parents[0], event.time)
                  .status.ok());
          auto submitted = service.SubmitPredict(id, predict_deadline_ms);
          CASCN_CHECK(submitted.ok()) << submitted.status();
          pending.push_back(std::move(submitted).value());
        }
        for (auto& future : pending) {
          const ServeResponse response = future.get();
          CASCN_CHECK(response.status.ok() ||
                      response.status.code() == StatusCode::kDeadlineExceeded)
              << response.status;
        }
      }
      for (size_t i : mine)
        CASCN_CHECK(service.CallClose("s" + std::to_string(i)).status.ok());
    });
  }
  for (auto& d : drivers) d.join();
  const auto end = std::chrono::steady_clock::now();

  RunResult result;
  result.seconds = std::chrono::duration<double>(end - start).count();
  result.snapshot = service.metrics().TakeSnapshot();
  result.requests = result.snapshot.counter(Counter::kRequestsTotal);
  return result;
}

int Main(int argc, char** argv) {
  CliFlags flags;
  CASCN_CHECK(flags.Parse(argc, argv).ok());
  const int sessions = static_cast<int>(flags.GetInt("sessions", 400));
  const int clients = static_cast<int>(flags.GetInt("clients", 8));
  const std::string workers_list = flags.GetString("workers_list", "1,2,4,8");
  std::string bench_out = flags.GetString("bench_out", "");
  if (bench_out.empty())
    bench_out = obs::BenchReport::DefaultPath("serve_throughput");
  const auto bench_start = std::chrono::steady_clock::now();

  // One tiny deterministic model checkpoint shared by all runs.
  CascnConfig config;
  config.padded_size = 16;
  config.hidden_dim = 6;
  config.cheb_order = 2;
  CascnModel model(config);
  const std::string ckpt = "/tmp/cascn_bench_serve.ckpt";
  CASCN_CHECK(SaveCascnCheckpoint(ckpt, model).ok());

  const auto replays = MakeWorkload(sessions);
  const unsigned cores = std::thread::hardware_concurrency();
  std::fprintf(stderr,
               "[serve_throughput] %zu sessions, %d clients, %u cores\n",
               replays.size(), clients, cores);
  if (cores < 2)
    std::fprintf(stderr,
                 "[serve_throughput] WARNING: single-core host — worker "
                 "counts beyond 1 cannot speed up compute-bound predicts\n");

  obs::BenchReport report("serve_throughput");
  report.AddConfig("sessions", static_cast<int64_t>(replays.size()))
      .AddConfig("clients", clients)
      .AddConfig("workers_list", workers_list)
      .AddConfig("hardware_concurrency", static_cast<int64_t>(cores));

  std::vector<int> worker_counts;
  for (const std::string& field : Split(workers_list, ',')) {
    const long value = std::strtol(field.c_str(), nullptr, 10);
    CASCN_CHECK(value >= 1) << "bad --workers_list entry: " << field;
    worker_counts.push_back(static_cast<int>(value));
  }
  CASCN_CHECK(!worker_counts.empty());

  std::string results_json;
  // Emits one run's stderr line, report rows (throughput plus a "p95:"
  // guard row so latency-tail regressions trip bench_guard, not just
  // throughput ones), and its entry in the human-readable results array.
  auto record_run = [&](const std::string& label, int workers,
                        const RunResult& run, const std::string& obs_json) {
    const double rps =
        run.seconds > 0.0 ? static_cast<double>(run.requests) / run.seconds
                          : 0.0;
    const uint64_t expired = run.snapshot.counter(Counter::kDeadlineExceeded);
    std::fprintf(stderr,
                 "[serve_throughput] %s requests=%llu seconds=%.3f "
                 "rps=%.0f p50=%.0fus p95=%.0fus p99=%.0fus batched=%llu "
                 "deadline_exceeded=%llu health=%s\n",
                 label.c_str(), static_cast<unsigned long long>(run.requests),
                 run.seconds, rps, run.snapshot.latency_p50_us,
                 run.snapshot.latency_p95_us, run.snapshot.latency_p99_us,
                 static_cast<unsigned long long>(
                     run.snapshot.counter(Counter::kBatchedRequests)),
                 static_cast<unsigned long long>(expired),
                 std::string(HealthName(run.snapshot.health)).c_str());

    const double ns_per_request =
        run.requests > 0 ? run.seconds * 1e9 / static_cast<double>(run.requests)
                         : 0.0;
    report.AddResult(
        obs::JsonObjectBuilder()
            .Add("benchmark", "serve/" + label)
            .Add("real_ns_per_iter", ns_per_request)
            .Add("workers", workers)
            .Add("requests", run.requests)
            .Add("seconds", run.seconds)
            .Add("requests_per_sec", rps)
            .Add("p50_us", run.snapshot.latency_p50_us)
            .Add("p95_us", run.snapshot.latency_p95_us)
            .Add("p99_us", run.snapshot.latency_p99_us)
            .Add("batches", run.snapshot.counter(Counter::kBatches))
            .Add("batched_requests",
                 run.snapshot.counter(Counter::kBatchedRequests))
            .Add("deadline_exceeded", expired)
            .Build());
    report.AddResult(
        obs::JsonObjectBuilder()
            .Add("benchmark", "serve/p95:" + label)
            .Add("real_ns_per_iter", run.snapshot.latency_p95_us * 1000.0)
            .Build());

    char entry[704];
    std::snprintf(
        entry, sizeof(entry),
        "%s\n    {\"run\": \"%s\", \"workers\": %d, \"requests\": %llu, "
        "\"seconds\": %.4f, "
        "\"requests_per_sec\": %.1f, \"p50_us\": %.1f, \"p95_us\": %.1f, "
        "\"p99_us\": %.1f, "
        "\"batches\": %llu, \"batched_requests\": %llu, "
        "\"deadline_exceeded\": %llu, \"obs\": ",
        results_json.empty() ? "" : ",", label.c_str(), workers,
        static_cast<unsigned long long>(run.requests), run.seconds, rps,
        run.snapshot.latency_p50_us, run.snapshot.latency_p95_us,
        run.snapshot.latency_p99_us,
        static_cast<unsigned long long>(
            run.snapshot.counter(Counter::kBatches)),
        static_cast<unsigned long long>(
            run.snapshot.counter(Counter::kBatchedRequests)),
        static_cast<unsigned long long>(expired));
    results_json += entry;
    results_json += obs_json;
    results_json += "}";
  };

  auto make_options = [&](int workers) {
    ServiceOptions options;
    options.num_workers = workers;
    options.queue_capacity = 16384;
    options.max_batch = 16;
    options.sessions.capacity = replays.size() + 16;
    options.sessions.observation_window = kWindow;
    return options;
  };

  for (int workers : worker_counts) {
    auto service =
        PredictionService::CreateFromCheckpoint(make_options(workers), ckpt);
    CASCN_CHECK(service.ok()) << service.status();

    const RunResult run = RunWorkload(**service, replays, clients);
    (*service)->Shutdown();
    // Unified observability snapshot for this run: queue-depth gauge and
    // batch-size histogram maintained by the service, plus the serve
    // counters bridged in.
    ExportToRegistry(run.snapshot, (*service)->registry());
    record_run("workers:" + std::to_string(workers), workers, run,
               (*service)->registry().JsonSnapshot());
  }

  // Degraded-mode scenario: a slice of predicts stalls inside the worker
  // (the "serve.slow_predict" fault, armed deterministically) while every
  // async predict carries a deadline. The service must keep draining —
  // expired requests fail fast with DeadlineExceeded instead of piling onto
  // workers — and the p95 guard row keeps the degraded latency tail honest.
  {
    const int workers = 2;
    auto service =
        PredictionService::CreateFromCheckpoint(make_options(workers), ckpt);
    CASCN_CHECK(service.ok()) << service.status();
    CASCN_CHECK(fault::FaultRegistry::Get()
                    .Configure("serve.slow_predict=every:16@2")
                    .ok());
    const RunResult run =
        RunWorkload(**service, replays, clients, /*predict_deadline_ms=*/10.0);
    fault::FaultRegistry::Get().Clear();
    (*service)->Shutdown();
    ExportToRegistry(run.snapshot, (*service)->registry());
    record_run("degraded", workers, run,
               (*service)->registry().JsonSnapshot());
  }

  std::printf(
      "{\n  \"bench\": \"serve_throughput\",\n  \"sessions\": %zu,\n"
      "  \"clients\": %d,\n  \"hardware_concurrency\": %u,\n"
      "  \"results\": [%s\n  ]\n}\n",
      replays.size(), clients, cores, results_json.c_str());

  report
      .SetWallClockSeconds(std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - bench_start)
                               .count())
      .CaptureProfile();
  const Status write_status = report.WriteFile(bench_out);
  CASCN_CHECK(write_status.ok()) << write_status;
  std::fprintf(stderr, "[serve_throughput] benchmark report written to %s\n",
               bench_out.c_str());
  CASCN_CHECK(obs::ShutdownDump().ok());
  return 0;
}

}  // namespace
}  // namespace cascn::serve

int main(int argc, char** argv) { return cascn::serve::Main(argc, argv); }
