// Extension study (beyond the paper's tables): the future-work directions
// of Section VI, measured on the Weibo dataset at T = 1 hour.
//   * attention pooling over snapshots instead of Eq. 17 sum pooling
//     (future-work item 1);
//   * a classical self-exciting point-process (Hawkes) predictor — the
//     generative-category baseline — and its convex coupling with CasCN
//     (future-work item 3).

#include <cstdio>
#include <iostream>

#include "baselines/hawkes_model.h"
#include "benchutil/experiment_runner.h"
#include "benchutil/table_printer.h"
#include "common/logging.h"
#include "core/trainer.h"

int main() {
  using namespace cascn;
  const double scale = bench::BenchScale();
  std::printf(
      "Extension study: attention pooling & Hawkes coupling (scale %.1f)\n\n",
      scale);
  const bench::SyntheticData data = bench::MakeSyntheticData(scale);
  auto dataset = bench::MakeDataset(data.weibo, true, 60.0,
                                    static_cast<int>(200 * scale));
  CASCN_CHECK(dataset.ok()) << dataset.status();
  bench::RunOptions opts =
      bench::DefaultRunOptions(scale, data.weibo_config.user_universe);
  bench::TuneForDataset(opts, /*weibo=*/true);

  TablePrinter table({"Model", "test MSLE"});

  // Published CasCN.
  auto cascn_run = bench::RunCascn(opts.cascn, *dataset, opts.trainer);
  table.AddRow({"CasCN (paper)", TablePrinter::Cell(cascn_run.test_msle)});
  std::fprintf(stderr, "[ext] CasCN done\n");

  // Extension 1: attention pooling.
  CascnConfig attn_config = opts.cascn;
  attn_config.attention_pooling = true;
  auto attn_run = bench::RunCascn(attn_config, *dataset, opts.trainer);
  table.AddRow(
      {"CasCN + attention pooling", TablePrinter::Cell(attn_run.test_msle)});
  std::fprintf(stderr, "[ext] attention done\n");

  // Generative baseline: parametric self-exciting point process.
  HawkesProcessModel hawkes;
  CASCN_CHECK(hawkes.Fit(*dataset).ok());
  const double hawkes_msle = EvaluateMsle(hawkes, dataset->test);
  table.AddRow({"Hawkes point process", TablePrinter::Cell(hawkes_msle)});

  // Extension 3: convex coupling of CasCN and the Hawkes estimate.
  HybridModel hybrid(cascn_run.model.get(), &hawkes);
  CASCN_CHECK(hybrid.Fit(*dataset).ok());
  const double hybrid_msle = EvaluateMsle(hybrid, dataset->test);
  table.AddRow({"CasCN + Hawkes hybrid", TablePrinter::Cell(hybrid_msle)});

  table.Print(std::cout);
  std::printf(
      "\nhybrid mixing weight on CasCN: %.2f (selected on validation)\n",
      hybrid.weight());
  std::printf(
      "shape check: the hybrid is never worse than its best component on "
      "validation by construction; the generative estimate alone trails "
      "the deep models (the paper's Section II observation).\n");
  return 0;
}
