// Training-throughput scaling vs. thread count.
//
// Trains the same CasCN model on the same generated dataset at each thread
// count in --threads_list (default 1,2,4,8), reporting per-epoch wall-clock,
// samples/sec, and speedup vs. the single-thread run. Thanks to the
// trainer's fixed-order gradient tree reduction the trained weights are
// bit-identical across runs, so this measures pure scheduling overhead and
// parallel speedup — the final train losses are asserted equal here.
//
//   ./bench_train_scaling [--cascades=160] [--epochs=2] [--batch_size=16]
//                         [--threads_list=1,2,4,8]
//
// Writes BENCH_train_scaling.json (obs/bench_report.h); --bench_out=PATH
// overrides the location. Row names follow the bench_guard convention
// ("train_epoch/threads:N" + real_ns_per_iter) with threads:1 as the
// calibration row, so relative regressions are caught by
// tools/bench_guard.py regardless of host speed.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/cli_flags.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "core/cascn_model.h"
#include "core/trainer.h"
#include "data/cascade_generator.h"
#include "data/dataset.h"
#include "obs/bench_report.h"
#include "obs/shutdown.h"
#include "parallel/parallel_for.h"

namespace cascn {
namespace {

CascadeDataset MakeDataset(int cascades) {
  GeneratorConfig config = WeiboLikeConfig();
  config.num_cascades = cascades;
  config.user_universe = 400;
  config.max_size = 80;
  Rng rng(17);
  const auto generated = GenerateCascades(config, rng);
  DatasetOptions opts;
  opts.observation_window = 60.0;
  opts.min_observed_size = 5;
  auto dataset = BuildDataset(generated, opts);
  CASCN_CHECK(dataset.ok()) << dataset.status();
  return std::move(dataset).value();
}

struct ScalingRun {
  size_t threads = 0;
  double total_seconds = 0.0;
  double epoch_seconds = 0.0;
  double samples_per_sec = 0.0;
  double final_train_loss = 0.0;
};

ScalingRun RunAtThreads(size_t threads, const CascadeDataset& dataset,
                        int epochs, int batch_size) {
  parallel::SetThreads(threads);
  CascnConfig config;
  config.padded_size = 24;
  config.hidden_dim = 12;
  config.cheb_order = 2;
  CascnModel model(config);

  TrainerOptions options;
  options.max_epochs = epochs;
  options.patience = epochs;  // no early stop: identical work per run
  options.batch_size = batch_size;
  const auto start = std::chrono::steady_clock::now();
  const TrainResult result = TrainRegressor(model, dataset, options);
  ScalingRun run;
  run.threads = threads;
  run.total_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  run.epoch_seconds = run.total_seconds / static_cast<double>(epochs);
  run.samples_per_sec =
      static_cast<double>(dataset.train.size()) * epochs / run.total_seconds;
  run.final_train_loss = result.history.back().train_loss;
  parallel::SetThreads(0);
  return run;
}

int Main(int argc, char** argv) {
  CliFlags flags;
  CASCN_CHECK(flags.Parse(argc, argv).ok());
  const int cascades = static_cast<int>(flags.GetInt("cascades", 160));
  const int epochs = static_cast<int>(flags.GetInt("epochs", 2));
  const int batch_size = static_cast<int>(flags.GetInt("batch_size", 16));
  const std::string threads_list =
      flags.GetString("threads_list", "1,2,4,8");
  std::string bench_out = flags.GetString("bench_out", "");
  if (bench_out.empty())
    bench_out = obs::BenchReport::DefaultPath("train_scaling");

  std::vector<size_t> thread_counts;
  for (const std::string& field : Split(threads_list, ',')) {
    const long value = std::strtol(field.c_str(), nullptr, 10);
    CASCN_CHECK(value >= 1) << "bad --threads_list entry: " << field;
    thread_counts.push_back(static_cast<size_t>(value));
  }
  CASCN_CHECK(!thread_counts.empty());
  CASCN_CHECK(thread_counts.front() == 1)
      << "--threads_list must start with 1 (the calibration run)";

  const auto bench_start = std::chrono::steady_clock::now();
  const CascadeDataset dataset = MakeDataset(cascades);
  const unsigned cores = std::thread::hardware_concurrency();
  std::fprintf(stderr,
               "[train_scaling] %zu train / %zu val samples, %d epochs, "
               "batch %d, %u cores\n",
               dataset.train.size(), dataset.validation.size(), epochs,
               batch_size, cores);
  if (cores < 2)
    std::fprintf(stderr,
                 "[train_scaling] WARNING: single-core host — thread counts "
                 "beyond 1 cannot speed up compute-bound training\n");

  obs::BenchReport report("train_scaling");
  report.AddConfig("cascades", cascades)
      .AddConfig("train_samples", static_cast<int64_t>(dataset.train.size()))
      .AddConfig("epochs", epochs)
      .AddConfig("batch_size", batch_size)
      .AddConfig("threads_list", threads_list)
      .AddConfig("hardware_concurrency", static_cast<int64_t>(cores));

  std::vector<ScalingRun> runs;
  for (const size_t threads : thread_counts) {
    runs.push_back(RunAtThreads(threads, dataset, epochs, batch_size));
    const ScalingRun& run = runs.back();
    const double speedup = runs.front().epoch_seconds / run.epoch_seconds;
    std::fprintf(stderr,
                 "[train_scaling] threads=%zu epoch=%.3fs "
                 "samples/sec=%.1f speedup=%.2fx loss=%.6f\n",
                 run.threads, run.epoch_seconds, run.samples_per_sec,
                 speedup, run.final_train_loss);
    // The determinism contract, enforced where it is easiest to violate.
    CASCN_CHECK(run.final_train_loss == runs.front().final_train_loss)
        << "train loss at " << run.threads
        << " threads diverged from the 1-thread run";
    report.AddResult(
        obs::JsonObjectBuilder()
            .Add("benchmark",
                 "train_epoch/threads:" + std::to_string(run.threads))
            .Add("real_ns_per_iter", run.epoch_seconds * 1e9)
            .Add("threads", static_cast<int64_t>(run.threads))
            .Add("epoch_seconds", run.epoch_seconds)
            .Add("samples_per_sec", run.samples_per_sec)
            .Add("speedup_vs_1", speedup)
            .Build());
  }

  report
      .SetWallClockSeconds(std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - bench_start)
                               .count())
      .CaptureProfile();
  const Status write_status = report.WriteFile(bench_out);
  CASCN_CHECK(write_status.ok()) << write_status;
  std::fprintf(stderr, "[train_scaling] benchmark report written to %s\n",
               bench_out.c_str());
  CASCN_CHECK(obs::ShutdownDump().ok());
  return 0;
}

}  // namespace
}  // namespace cascn

int main(int argc, char** argv) { return cascn::Main(argc, argv); }
