// Table III: overall MSLE comparison of all methods on both datasets across
// three observation windows each — the paper's headline result.
//
// Paper shape to reproduce (absolute values differ on synthetic data):
//   * CasCN attains the lowest MSLE in every column;
//   * deep structural-temporal models (DeepHawkes, Topo-LSTM, DeepCas) beat
//     feature-based and embedding baselines;
//   * larger observation windows give lower MSLE for every method.

// Observability: pass --trace_out=trace.json to record spans (Chebyshev
// convolutions, LSTM steps, trainer phases) for the whole run, and
// --metrics_out=metrics.json to dump the global registry (train counters).
// A machine-readable BENCH_table3_overall.json (obs/bench_report.h) is
// always written; --bench_out=PATH overrides its location.

#include <chrono>
#include <cstdio>
#include <iostream>
#include <map>

#include "benchutil/experiment_runner.h"
#include "benchutil/table_printer.h"
#include "common/cli_flags.h"
#include "common/logging.h"
#include "obs/bench_report.h"
#include "obs/metrics_registry.h"
#include "obs/shutdown.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "parallel/parallel_for.h"

int main(int argc, char** argv) {
  using namespace cascn;
  CliFlags flags;
  CASCN_CHECK(flags.Parse(argc, argv).ok());
  const std::string trace_out = flags.GetString("trace_out", "");
  const std::string metrics_out = flags.GetString("metrics_out", "");
  std::string bench_out = flags.GetString("bench_out", "");
  if (bench_out.empty())
    bench_out = obs::BenchReport::DefaultPath("table3_overall");
  if (!trace_out.empty()) obs::Tracer::Get().Enable();
  // --threads overrides the CASCN_THREADS environment default; 1 = serial.
  const int64_t threads_flag = flags.GetInt("threads", 0);
  if (threads_flag > 0)
    parallel::SetThreads(static_cast<size_t>(threads_flag));
  const auto run_start = std::chrono::steady_clock::now();
  const double scale = bench::BenchScale();
  std::printf("Table III: overall performance comparison (MSLE, scale %.1f)\n\n",
              scale);
  const bench::SyntheticData data = bench::MakeSyntheticData(scale);
  const int max_train = static_cast<int>(200 * scale);

  struct Column {
    bool weibo;
    double window;
  };
  std::vector<Column> columns;
  for (double w : bench::WeiboWindows()) columns.push_back({true, w});
  for (double w : bench::CitationWindows()) columns.push_back({false, w});

  std::vector<std::string> header = {"Model"};
  for (const Column& c : columns)
    header.push_back((c.weibo ? "Weibo " : "HEP ") +
                     bench::WindowLabel(c.weibo, c.window));
  TablePrinter table(header);

  // cell[model][column] = msle
  std::map<bench::ModelKind, std::vector<double>> cells;
  for (const Column& column : columns) {
    const auto& cascades = column.weibo ? data.weibo : data.citation;
    auto dataset =
        bench::MakeDataset(cascades, column.weibo, column.window, max_train);
    CASCN_CHECK(dataset.ok()) << dataset.status();
    bench::RunOptions opts = bench::DefaultRunOptions(
        scale, column.weibo ? data.weibo_config.user_universe
                            : data.citation_config.user_universe);
    bench::TuneForDataset(opts, column.weibo);
    for (bench::ModelKind kind : bench::Table3Models()) {
      const auto outcome = bench::RunModel(kind, *dataset, opts);
      cells[kind].push_back(outcome.test_msle);
      std::fprintf(stderr, "[table3] %-16s %-14s msle=%.3f\n",
                   outcome.model.c_str(),
                   bench::WindowLabel(column.weibo, column.window).c_str(),
                   outcome.test_msle);
    }
  }

  for (bench::ModelKind kind : bench::Table3Models()) {
    std::vector<std::string> row = {bench::ModelKindName(kind)};
    for (double msle : cells[kind]) row.push_back(TablePrinter::Cell(msle));
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);

  // Shape checks.
  const auto& cascn = cells[bench::ModelKind::kCascn];
  int cascn_wins = 0;
  for (size_t col = 0; col < columns.size(); ++col) {
    bool best = true;
    for (const auto& [kind, msles] : cells)
      if (kind != bench::ModelKind::kCascn && msles[col] < cascn[col])
        best = false;
    if (best) ++cascn_wins;
  }
  std::printf("\nshape check: CasCN is best in %d/%zu columns (paper: 6/6)\n",
              cascn_wins, columns.size());
  int window_improvements = 0, window_pairs = 0;
  for (const auto& [kind, msles] : cells) {
    for (int base : {0, 3}) {  // weibo block, citation block
      for (int i = 0; i < 2; ++i) {
        ++window_pairs;
        if (msles[base + i + 1] <= msles[base + i] + 0.05)
          ++window_improvements;
      }
    }
  }
  std::printf(
      "shape check: longer windows help in %d/%d model-window pairs\n",
      window_improvements, window_pairs);

  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    run_start)
          .count();
  obs::BenchReport report("table3_overall");
  report.AddConfig("scale", scale)
      .AddConfig("max_train", max_train)
      .AddConfig("threads",
                 static_cast<int64_t>(parallel::ConfiguredThreads()))
      .SetWallClockSeconds(wall_seconds);
  for (const auto& [kind, msles] : cells) {
    for (size_t col = 0; col < columns.size(); ++col) {
      report.AddResult(
          obs::JsonObjectBuilder()
              .Add("model", bench::ModelKindName(kind))
              .Add("dataset", columns[col].weibo ? "weibo" : "citation")
              .Add("window",
                   bench::WindowLabel(columns[col].weibo, columns[col].window))
              .Add("test_msle", msles[col])
              .Build());
    }
  }
  report.CaptureProfile().CaptureMetrics(obs::MetricsRegistry::Get());
  const Status write_status = report.WriteFile(bench_out);
  CASCN_CHECK(write_status.ok()) << write_status;
  std::fprintf(stderr, "[table3] benchmark report written to %s\n",
               bench_out.c_str());

  // Single exit-time flush: nothing recorded after this point is dropped.
  obs::ShutdownDumpOptions dump;
  dump.trace_path = trace_out;
  dump.metrics_path = metrics_out;
  CASCN_CHECK(obs::ShutdownDump(dump).ok());
  if (!trace_out.empty())
    std::fprintf(stderr, "[table3] trace with %zu events written to %s\n",
                 obs::Tracer::Get().event_count(), trace_out.c_str());
  if (!metrics_out.empty())
    std::fprintf(stderr, "[table3] metrics snapshot written to %s\n",
                 metrics_out.c_str());
  return 0;
}
