// Table III: overall MSLE comparison of all methods on both datasets across
// three observation windows each — the paper's headline result.
//
// Paper shape to reproduce (absolute values differ on synthetic data):
//   * CasCN attains the lowest MSLE in every column;
//   * deep structural-temporal models (DeepHawkes, Topo-LSTM, DeepCas) beat
//     feature-based and embedding baselines;
//   * larger observation windows give lower MSLE for every method.

// Observability: pass --trace_out=trace.json to record spans (Chebyshev
// convolutions, LSTM steps, trainer phases) for the whole run, and
// --metrics_out=metrics.json to dump the global registry (train counters).

#include <cstdio>
#include <iostream>
#include <map>

#include "benchutil/experiment_runner.h"
#include "benchutil/table_printer.h"
#include "common/cli_flags.h"
#include "common/logging.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"

int main(int argc, char** argv) {
  using namespace cascn;
  CliFlags flags;
  CASCN_CHECK(flags.Parse(argc, argv).ok());
  const std::string trace_out = flags.GetString("trace_out", "");
  const std::string metrics_out = flags.GetString("metrics_out", "");
  if (!trace_out.empty()) obs::Tracer::Get().Enable();
  const double scale = bench::BenchScale();
  std::printf("Table III: overall performance comparison (MSLE, scale %.1f)\n\n",
              scale);
  const bench::SyntheticData data = bench::MakeSyntheticData(scale);
  const int max_train = static_cast<int>(200 * scale);

  struct Column {
    bool weibo;
    double window;
  };
  std::vector<Column> columns;
  for (double w : bench::WeiboWindows()) columns.push_back({true, w});
  for (double w : bench::CitationWindows()) columns.push_back({false, w});

  std::vector<std::string> header = {"Model"};
  for (const Column& c : columns)
    header.push_back((c.weibo ? "Weibo " : "HEP ") +
                     bench::WindowLabel(c.weibo, c.window));
  TablePrinter table(header);

  // cell[model][column] = msle
  std::map<bench::ModelKind, std::vector<double>> cells;
  for (const Column& column : columns) {
    const auto& cascades = column.weibo ? data.weibo : data.citation;
    auto dataset =
        bench::MakeDataset(cascades, column.weibo, column.window, max_train);
    CASCN_CHECK(dataset.ok()) << dataset.status();
    bench::RunOptions opts = bench::DefaultRunOptions(
        scale, column.weibo ? data.weibo_config.user_universe
                            : data.citation_config.user_universe);
    bench::TuneForDataset(opts, column.weibo);
    for (bench::ModelKind kind : bench::Table3Models()) {
      const auto outcome = bench::RunModel(kind, *dataset, opts);
      cells[kind].push_back(outcome.test_msle);
      std::fprintf(stderr, "[table3] %-16s %-14s msle=%.3f\n",
                   outcome.model.c_str(),
                   bench::WindowLabel(column.weibo, column.window).c_str(),
                   outcome.test_msle);
    }
  }

  for (bench::ModelKind kind : bench::Table3Models()) {
    std::vector<std::string> row = {bench::ModelKindName(kind)};
    for (double msle : cells[kind]) row.push_back(TablePrinter::Cell(msle));
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);

  // Shape checks.
  const auto& cascn = cells[bench::ModelKind::kCascn];
  int cascn_wins = 0;
  for (size_t col = 0; col < columns.size(); ++col) {
    bool best = true;
    for (const auto& [kind, msles] : cells)
      if (kind != bench::ModelKind::kCascn && msles[col] < cascn[col])
        best = false;
    if (best) ++cascn_wins;
  }
  std::printf("\nshape check: CasCN is best in %d/%zu columns (paper: 6/6)\n",
              cascn_wins, columns.size());
  int window_improvements = 0, window_pairs = 0;
  for (const auto& [kind, msles] : cells) {
    for (int base : {0, 3}) {  // weibo block, citation block
      for (int i = 0; i < 2; ++i) {
        ++window_pairs;
        if (msles[base + i + 1] <= msles[base + i] + 0.05)
          ++window_improvements;
      }
    }
  }
  std::printf(
      "shape check: longer windows help in %d/%d model-window pairs\n",
      window_improvements, window_pairs);

  if (!metrics_out.empty()) {
    FILE* out = std::fopen(metrics_out.c_str(), "w");
    CASCN_CHECK(out != nullptr) << "cannot open " << metrics_out;
    std::fprintf(out, "%s\n",
                 obs::MetricsRegistry::Get().JsonSnapshot().c_str());
    std::fclose(out);
    std::fprintf(stderr, "[table3] metrics snapshot written to %s\n",
                 metrics_out.c_str());
  }
  if (!trace_out.empty()) {
    const auto status = obs::Tracer::Get().WriteChromeTrace(trace_out);
    CASCN_CHECK(status.ok()) << status;
    std::fprintf(stderr, "[table3] trace with %zu events written to %s\n",
                 obs::Tracer::Get().event_count(), trace_out.c_str());
  }
  return 0;
}
