// Fig. 4: distribution of cascade sizes on both datasets (log-log
// histogram). Paper shape: a power-law-like decay — the number of cascades
// falls roughly monotonically with size over logarithmic bins.

#include <cstdio>
#include <iostream>

#include "benchutil/experiment_runner.h"
#include "benchutil/table_printer.h"
#include "data/statistics.h"

int main() {
  using namespace cascn;
  const double scale = bench::BenchScale();
  std::printf("Fig. 4: distribution of cascade sizes (scale %.1f)\n\n",
              scale);
  const bench::SyntheticData data = bench::MakeSyntheticData(scale);

  auto report = [](const char* name, const std::vector<Cascade>& cascades) {
    std::printf("%s\n", name);
    TablePrinter table({"size bin", "count", "bar"});
    const auto bins = SizeDistribution(cascades);
    int max_count = 1;
    for (const auto& bin : bins) max_count = std::max(max_count, bin.count);
    for (const auto& bin : bins) {
      const int bar_len = bin.count > 0
                              ? 1 + 40 * bin.count / max_count
                              : 0;
      table.AddRow({"[" + std::to_string(bin.size_lo) + ", " +
                        std::to_string(bin.size_hi) + ")",
                    std::to_string(bin.count), std::string(bar_len, '#')});
    }
    table.Print(std::cout);
    // Shape check: first two bins dominate the last two.
    int head = 0, tail = 0;
    for (size_t i = 0; i < bins.size(); ++i) {
      if (i < 2) head += bins[i].count;
      if (i + 2 >= bins.size()) tail += bins[i].count;
    }
    std::printf("shape check: head bins %d >> tail bins %d (power law)\n\n",
                head, tail);
  };

  report("(a) Weibo dataset", data.weibo);
  report("(b) HEP-PH", data.citation);
  return 0;
}
