// Fig. 7: validation loss per epoch for Chebyshev order K in {1, 2, 3} on
// the Weibo dataset. Paper shape: loss declines steadily for every K, with
// no evidence that larger or smaller K dominates the middle value.

#include <cstdio>
#include <iostream>

#include "benchutil/experiment_runner.h"
#include "benchutil/table_printer.h"
#include "common/logging.h"

int main() {
  using namespace cascn;
  const double scale = bench::BenchScale();
  std::printf("Fig. 7: validation loss vs epoch for K = 1/2/3 (scale %.1f)\n\n",
              scale);
  const bench::SyntheticData data = bench::MakeSyntheticData(scale);
  auto dataset = bench::MakeDataset(data.weibo, true, 60.0,
                                    static_cast<int>(120 * scale));
  CASCN_CHECK(dataset.ok()) << dataset.status();

  bench::RunOptions opts =
      bench::DefaultRunOptions(scale, data.weibo_config.user_universe);
  bench::TuneForDataset(opts, /*weibo=*/true);
  opts.trainer.patience = opts.trainer.max_epochs;  // full curve, no stop

  std::vector<std::vector<double>> curves;
  for (int k : {1, 2, 3}) {
    CascnConfig config = opts.cascn;
    config.cheb_order = k;
    const auto run = bench::RunCascn(config, *dataset, opts.trainer);
    std::vector<double> curve;
    for (const auto& e : run.train.history)
      curve.push_back(e.validation_msle);
    curves.push_back(std::move(curve));
    std::fprintf(stderr, "[fig7] K=%d done (%zu epochs)\n", k,
                 curves.back().size());
  }

  TablePrinter table({"epoch", "K=1", "K=2", "K=3"});
  size_t epochs = 0;
  for (const auto& c : curves) epochs = std::max(epochs, c.size());
  for (size_t e = 0; e < epochs; ++e) {
    std::vector<std::string> row = {std::to_string(e + 1)};
    for (const auto& c : curves)
      row.push_back(e < c.size() ? TablePrinter::Cell(c[e]) : "-");
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);

  for (size_t i = 0; i < curves.size(); ++i) {
    const auto& c = curves[i];
    double best = c[0];
    for (double v : c) best = std::min(best, v);
    std::printf(
        "shape check: K=%zu validation loss declines from %.3f to best %.3f\n",
        i + 1, c.front(), best);
  }
  return 0;
}
