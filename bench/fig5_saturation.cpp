// Fig. 5: percentage of final popularity reached over time. Paper shape:
// Weibo cascades saturate within the 24 h tracking window (steep early
// curve), while HEP-PH citations accrue over many years (gradual curve);
// the 3/5/7-year observation windows correspond to roughly 50/60/70% of
// the final size.

#include <cstdio>
#include <iostream>

#include "benchutil/experiment_runner.h"
#include "benchutil/table_printer.h"
#include "data/statistics.h"

int main() {
  using namespace cascn;
  const double scale = bench::BenchScale();
  std::printf("Fig. 5: popularity saturation over time (scale %.1f)\n\n",
              scale);
  const bench::SyntheticData data = bench::MakeSyntheticData(scale);

  std::printf("(a) Weibo: fraction of final size vs hours\n");
  TablePrinter weibo_table({"time (h)", "fraction", "bar"});
  const auto weibo_curve =
      SaturationCurve(data.weibo, data.weibo_config.horizon, 12);
  for (const auto& p : weibo_curve) {
    weibo_table.AddRow(
        {TablePrinter::Cell(p.time / 60.0, 1),
         TablePrinter::Cell(p.fraction_of_final, 3),
         std::string(static_cast<size_t>(40 * p.fraction_of_final), '#')});
  }
  weibo_table.Print(std::cout);

  std::printf("\n(b) HEP-PH: fraction of final size vs years\n");
  TablePrinter cite_table({"time (y)", "fraction", "bar"});
  const auto cite_curve =
      SaturationCurve(data.citation, data.citation_config.horizon, 10);
  for (const auto& p : cite_curve) {
    cite_table.AddRow(
        {TablePrinter::Cell(p.time / 12.0, 1),
         TablePrinter::Cell(p.fraction_of_final, 3),
         std::string(static_cast<size_t>(40 * p.fraction_of_final), '#')});
  }
  cite_table.Print(std::cout);

  // Shape checks.
  std::printf(
      "\nshape check: Weibo reaches %.0f%% of final size a quarter into its "
      "horizon vs HEP-PH %.0f%% (paper: Weibo saturates much faster)\n",
      100 * weibo_curve[2].fraction_of_final,
      100 * cite_curve[1].fraction_of_final);
  const auto find_at = [&](double months) {
    for (const auto& p : cite_curve)
      if (p.time >= months) return p.fraction_of_final;
    return 1.0;
  };
  std::printf(
      "shape check: HEP-PH popularity at 3/5/7 years = %.0f%%/%.0f%%/%.0f%% "
      "(paper: ~50/60/70%%)\n",
      100 * find_at(36), 100 * find_at(60), 100 * find_at(84));
  return 0;
}
