// Table II: dataset statistics — cascade counts and average nodes/edges per
// split, for every observation window of both datasets.
//
// Paper reference (real data): Weibo has ~25k-32k train cascades with ~29
// average observed nodes; HEP-PH has ~3.5k train cascades with ~5 average
// nodes. The synthetic corpora are smaller but reproduce the shape: Weibo
// observed cascades are an order of magnitude larger than citation ones,
// and counts/nodes grow with the observation window.

#include <cstdio>
#include <iostream>

#include "benchutil/experiment_runner.h"
#include "benchutil/table_printer.h"
#include "common/logging.h"
#include "data/statistics.h"

int main() {
  using namespace cascn;
  const double scale = bench::BenchScale();
  std::printf("Table II: statistics of datasets (scale %.1f)\n\n", scale);
  const bench::SyntheticData data = bench::MakeSyntheticData(scale);

  auto report = [&](const char* name, const std::vector<Cascade>& cascades,
                    bool weibo, const std::vector<double>& windows) {
    std::printf("%s: %zu cascades total\n", name, cascades.size());
    TablePrinter table({"T", "split", "cascades", "avg nodes", "avg edges"});
    for (double window : windows) {
      auto dataset = bench::MakeDataset(cascades, weibo, window);
      CASCN_CHECK(dataset.ok()) << dataset.status();
      const DatasetStatistics stats = ComputeDatasetStatistics(*dataset);
      const std::string label = bench::WindowLabel(weibo, window);
      table.AddRow({label, "train", std::to_string(stats.train.num_cascades),
                    TablePrinter::Cell(stats.train.avg_nodes, 2),
                    TablePrinter::Cell(stats.train.avg_edges, 2)});
      table.AddRow({label, "val",
                    std::to_string(stats.validation.num_cascades),
                    TablePrinter::Cell(stats.validation.avg_nodes, 2),
                    TablePrinter::Cell(stats.validation.avg_edges, 2)});
      table.AddRow({label, "test", std::to_string(stats.test.num_cascades),
                    TablePrinter::Cell(stats.test.avg_nodes, 2),
                    TablePrinter::Cell(stats.test.avg_edges, 2)});
    }
    table.Print(std::cout);
    std::printf("\n");
  };

  report("Sina Weibo (synthetic)", data.weibo, /*weibo=*/true,
         bench::WeiboWindows());
  report("HEP-PH (synthetic)", data.citation, /*weibo=*/false,
         bench::CitationWindows());
  std::printf(
      "shape check vs paper: Weibo observed cascades are much larger than "
      "citation ones, and both counts and sizes grow with T.\n");
  return 0;
}
