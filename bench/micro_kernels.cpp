// Micro-benchmarks of the substrate kernels that dominate CasCN training:
// dense matmul, sparse-dense matmul, the CasLaplacian construction
// (Algorithm 1), the Chebyshev basis recursion, one graph-conv LSTM step
// (forward and forward+backward), and snapshot encoding.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/encoder.h"
#include "data/cascade_generator.h"
#include "graph/chebyshev.h"
#include "graph/laplacian.h"
#include "nn/graph_rnn_cells.h"
#include "tensor/tensor.h"

namespace cascn {
namespace {

Cascade BenchCascade(int n) {
  Rng rng(n);
  std::vector<AdoptionEvent> events = {{0, 0, {}, 0.0}};
  for (int i = 1; i < n; ++i) {
    AdoptionEvent e;
    e.node = i;
    e.user = static_cast<int>(rng.UniformInt(1000));
    e.parents.push_back(static_cast<int>(rng.UniformInt(i)));
    e.time = static_cast<double>(i);
    events.push_back(e);
  }
  return std::move(Cascade::Create("bench", std::move(events))).value();
}

void BM_DenseMatMul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  const Tensor a = Tensor::RandomNormal(n, n, 1.0, rng);
  const Tensor b = Tensor::RandomNormal(n, n, 1.0, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * int64_t{2} * n * n * n);
}
BENCHMARK(BM_DenseMatMul)->Arg(16)->Arg(32)->Arg(64);

void BM_SparseMatMulDense(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Cascade cascade = BenchCascade(n);
  const CsrMatrix adj = cascade.AdjacencyMatrix(n, n, true);
  Rng rng(2);
  const Tensor x = Tensor::RandomNormal(n, 16, 1.0, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(adj.MatMulDense(x));
  }
}
BENCHMARK(BM_SparseMatMulDense)->Arg(32)->Arg(128);

void BM_CasLaplacian(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Cascade cascade = BenchCascade(n);
  for (auto _ : state) {
    auto lap = CascadeLaplacian(cascade, n);
    benchmark::DoNotOptimize(lap);
  }
}
BENCHMARK(BM_CasLaplacian)->Arg(16)->Arg(32)->Arg(64);

void BM_ChebyshevBasis(benchmark::State& state) {
  const int n = 32;
  const Cascade cascade = BenchCascade(n);
  auto lap = CascadeLaplacian(cascade, n);
  const CsrMatrix scaled = ScaleLaplacian(*lap, 2.0, n);
  const int order = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ChebyshevBasis(scaled, order, n));
  }
}
BENCHMARK(BM_ChebyshevBasis)->Arg(2)->Arg(3)->Arg(5);

void BM_GraphConvLstmStepForward(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(3);
  nn::GraphConvLstmCell cell(n, 12, 2, rng);
  const Cascade cascade = BenchCascade(n);
  auto lap = CascadeLaplacian(cascade, n);
  const auto basis = ChebyshevBasis(ScaleLaplacian(*lap, 2.0, n), 2, n);
  const Tensor x_val = cascade.AdjacencyMatrix(n, n, true).ToDense();
  for (auto _ : state) {
    const ag::Variable x = ag::Variable::Leaf(x_val);
    benchmark::DoNotOptimize(cell.Step(basis, x, cell.InitialState()));
  }
}
BENCHMARK(BM_GraphConvLstmStepForward)->Arg(16)->Arg(32);

void BM_GraphConvLstmStepTrain(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(4);
  nn::GraphConvLstmCell cell(n, 12, 2, rng);
  const Cascade cascade = BenchCascade(n);
  auto lap = CascadeLaplacian(cascade, n);
  const auto basis = ChebyshevBasis(ScaleLaplacian(*lap, 2.0, n), 2, n);
  const Tensor x_val = cascade.AdjacencyMatrix(n, n, true).ToDense();
  for (auto _ : state) {
    const ag::Variable x = ag::Variable::Leaf(x_val);
    const nn::RnnState next = cell.Step(basis, x, cell.InitialState());
    ag::Sum(ag::Square(next.h)).Backward();
    cell.ZeroGrad();
  }
}
BENCHMARK(BM_GraphConvLstmStepTrain)->Arg(16)->Arg(32);

void BM_EncodeCascade(benchmark::State& state) {
  GeneratorConfig gen = WeiboLikeConfig();
  gen.num_cascades = 1;
  Rng rng(5);
  CascadeSample sample;
  sample.observed = GenerateCascades(gen, rng)[0].Prefix(60.0);
  sample.observation_window = 60.0;
  CascnConfig config;
  config.padded_size = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto enc = EncodeCascade(sample, config);
    benchmark::DoNotOptimize(enc);
  }
}
BENCHMARK(BM_EncodeCascade)->Arg(16)->Arg(32)->Arg(64);

}  // namespace
}  // namespace cascn
