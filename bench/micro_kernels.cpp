// Micro-benchmarks of the substrate kernels that dominate CasCN training:
// dense matmul, sparse-dense matmul, the CasLaplacian construction
// (Algorithm 1), the Chebyshev basis recursion, one graph-conv LSTM step
// (forward and forward+backward), and snapshot encoding.
//
// Besides the usual console output, every run writes a machine-readable
// BENCH_micro_kernels.json (see obs/bench_report.h) that the CI bench-guard
// job diffs against bench/baselines/. Flags on top of google-benchmark's:
//   --bench_out=PATH     report path (default BENCH_micro_kernels.json)
//   --trace_out=PATH     Chrome trace of the run
//   --metrics_out=PATH   global metrics-registry snapshot
// Run with CASCN_PROFILE=1 for the per-op autograd profile (embedded in the
// report and printed as a table on exit).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "core/encoder.h"
#include "data/cascade_generator.h"
#include "graph/chebyshev.h"
#include "graph/laplacian.h"
#include "nn/graph_rnn_cells.h"
#include "obs/bench_report.h"
#include "obs/shutdown.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "tensor/tensor.h"

namespace cascn {
namespace {

Cascade BenchCascade(int n) {
  Rng rng(n);
  std::vector<AdoptionEvent> events = {{0, 0, {}, 0.0}};
  for (int i = 1; i < n; ++i) {
    AdoptionEvent e;
    e.node = i;
    e.user = static_cast<int>(rng.UniformInt(1000));
    e.parents.push_back(static_cast<int>(rng.UniformInt(i)));
    e.time = static_cast<double>(i);
    events.push_back(e);
  }
  return std::move(Cascade::Create("bench", std::move(events))).value();
}

void BM_DenseMatMul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  const Tensor a = Tensor::RandomNormal(n, n, 1.0, rng);
  const Tensor b = Tensor::RandomNormal(n, n, 1.0, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * int64_t{2} * n * n * n);
}
BENCHMARK(BM_DenseMatMul)->Arg(16)->Arg(32)->Arg(64);

void BM_SparseMatMulDense(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Cascade cascade = BenchCascade(n);
  const CsrMatrix adj = cascade.AdjacencyMatrix(n, n, true);
  Rng rng(2);
  const Tensor x = Tensor::RandomNormal(n, 16, 1.0, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(adj.MatMulDense(x));
  }
}
BENCHMARK(BM_SparseMatMulDense)->Arg(32)->Arg(128);

void BM_CasLaplacian(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Cascade cascade = BenchCascade(n);
  for (auto _ : state) {
    auto lap = CascadeLaplacian(cascade, n);
    benchmark::DoNotOptimize(lap);
  }
}
BENCHMARK(BM_CasLaplacian)->Arg(16)->Arg(32)->Arg(64);

void BM_ChebyshevBasis(benchmark::State& state) {
  const int n = 32;
  const Cascade cascade = BenchCascade(n);
  auto lap = CascadeLaplacian(cascade, n);
  const CsrMatrix scaled = ScaleLaplacian(*lap, 2.0, n);
  const int order = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ChebyshevBasis(scaled, order, n));
  }
}
BENCHMARK(BM_ChebyshevBasis)->Arg(2)->Arg(3)->Arg(5);

void BM_GraphConvLstmStepForward(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(3);
  nn::GraphConvLstmCell cell(n, 12, 2, rng);
  const Cascade cascade = BenchCascade(n);
  auto lap = CascadeLaplacian(cascade, n);
  const auto basis = ChebyshevBasis(ScaleLaplacian(*lap, 2.0, n), 2, n);
  const Tensor x_val = cascade.AdjacencyMatrix(n, n, true).ToDense();
  for (auto _ : state) {
    const ag::Variable x = ag::Variable::Leaf(x_val);
    benchmark::DoNotOptimize(cell.Step(basis, x, cell.InitialState()));
  }
}
BENCHMARK(BM_GraphConvLstmStepForward)->Arg(16)->Arg(32);

void BM_GraphConvLstmStepTrain(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(4);
  nn::GraphConvLstmCell cell(n, 12, 2, rng);
  const Cascade cascade = BenchCascade(n);
  auto lap = CascadeLaplacian(cascade, n);
  const auto basis = ChebyshevBasis(ScaleLaplacian(*lap, 2.0, n), 2, n);
  const Tensor x_val = cascade.AdjacencyMatrix(n, n, true).ToDense();
  for (auto _ : state) {
    const ag::Variable x = ag::Variable::Leaf(x_val);
    const nn::RnnState next = cell.Step(basis, x, cell.InitialState());
    ag::Sum(ag::Square(next.h)).Backward();
    cell.ZeroGrad();
  }
}
BENCHMARK(BM_GraphConvLstmStepTrain)->Arg(16)->Arg(32);

void BM_EncodeCascade(benchmark::State& state) {
  GeneratorConfig gen = WeiboLikeConfig();
  gen.num_cascades = 1;
  Rng rng(5);
  CascadeSample sample;
  sample.observed = GenerateCascades(gen, rng)[0].Prefix(60.0);
  sample.observation_window = 60.0;
  CascnConfig config;
  config.padded_size = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto enc = EncodeCascade(sample, config);
    benchmark::DoNotOptimize(enc);
  }
}
BENCHMARK(BM_EncodeCascade)->Arg(16)->Arg(32)->Arg(64);

/// One captured measurement, as fed into the BENCH_*.json results array.
struct CapturedRun {
  std::string name;
  double real_ns_per_iter = 0.0;
  double cpu_ns_per_iter = 0.0;
  int64_t iterations = 0;
  double items_per_second = 0.0;  // 0 when the benchmark sets no item count
};

/// Forwards to the normal console output while keeping each per-iteration
/// measurement for the machine-readable report.
class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      CapturedRun captured;
      captured.name = run.run_name.str();
      captured.real_ns_per_iter = run.GetAdjustedRealTime();
      captured.cpu_ns_per_iter = run.GetAdjustedCPUTime();
      captured.iterations = run.iterations;
      const auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) captured.items_per_second = it->second;
      captured_.push_back(std::move(captured));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<CapturedRun>& captured() const { return captured_; }

 private:
  std::vector<CapturedRun> captured_;
};

/// Consumes --name=value from argv (so google-benchmark's own flag parsing
/// never sees it); returns "" when absent.
std::string TakeFlag(int& argc, char** argv, const char* name) {
  const std::string prefix = std::string("--") + name + "=";
  std::string value;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      value = argv[i] + prefix.size();
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return value;
}

int MicroKernelsMain(int argc, char** argv) {
  std::string bench_out = TakeFlag(argc, argv, "bench_out");
  const std::string trace_out = TakeFlag(argc, argv, "trace_out");
  const std::string metrics_out = TakeFlag(argc, argv, "metrics_out");
  if (!trace_out.empty()) obs::Tracer::Get().Enable();
  if (bench_out.empty())
    bench_out = obs::BenchReport::DefaultPath("micro_kernels");

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;

  const auto start = std::chrono::steady_clock::now();
  CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  obs::BenchReport report("micro_kernels");
  report.AddConfig("profile_enabled",
                   static_cast<int>(obs::Profiler::Get().enabled()))
      .AddConfig("num_benchmarks",
                 static_cast<int64_t>(reporter.captured().size()))
      .SetWallClockSeconds(wall_seconds);
  for (const CapturedRun& run : reporter.captured()) {
    obs::JsonObjectBuilder row;
    row.Add("benchmark", run.name)
        .Add("real_ns_per_iter", run.real_ns_per_iter)
        .Add("cpu_ns_per_iter", run.cpu_ns_per_iter)
        .Add("iterations", run.iterations);
    if (run.items_per_second > 0)
      row.Add("items_per_second", run.items_per_second);
    report.AddResult(row.Build());
  }
  report.CaptureProfile().CaptureMetrics(obs::MetricsRegistry::Get());
  const Status write_status = report.WriteFile(bench_out);
  CASCN_CHECK(write_status.ok()) << write_status;
  std::fprintf(stderr, "[micro_kernels] benchmark report written to %s\n",
               bench_out.c_str());

  obs::ShutdownDumpOptions dump;
  dump.trace_path = trace_out;
  dump.metrics_path = metrics_out;
  CASCN_CHECK(obs::ShutdownDump(dump).ok());
  benchmark::Shutdown();
  return 0;
}

}  // namespace
}  // namespace cascn

int main(int argc, char** argv) { return cascn::MicroKernelsMain(argc, argv); }
