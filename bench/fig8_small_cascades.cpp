// Fig. 8: impact of small observed cascades.
//   (a) average observed cascade size as the observation window grows
//       (minutes);
//   (b) test MSLE when only cascades observed below a size cap are kept:
//       caps 10/20/30/40/50.
// Paper shape: (a) grows steadily; (b) the larger the observed cascades,
// the lower the achievable MSLE.

#include <cstdio>
#include <iostream>

#include "benchutil/experiment_runner.h"
#include "benchutil/table_printer.h"
#include "common/logging.h"

int main() {
  using namespace cascn;
  const double scale = bench::BenchScale();
  std::printf("Fig. 8: impact of smaller-size observations (scale %.1f)\n\n",
              scale);
  const bench::SyntheticData data = bench::MakeSyntheticData(scale);

  // (a) Average observed size vs observation minutes.
  std::printf("(a) average observed cascade size vs observation time\n");
  TablePrinter growth({"minutes", "avg observed size"});
  for (int minutes = 5; minutes <= 60; minutes += 5) {
    double total = 0;
    for (const Cascade& c : data.weibo) total += c.SizeAtTime(minutes);
    growth.AddRow({std::to_string(minutes),
                   TablePrinter::Cell(total / data.weibo.size(), 2)});
  }
  growth.Print(std::cout);

  // (b) MSLE when training/evaluating only on cascades whose observed size
  // is below a cap.
  std::printf("\n(b) test MSLE by observed-size cap (T = 1 hour)\n");
  bench::RunOptions opts =
      bench::DefaultRunOptions(scale, data.weibo_config.user_universe);
  bench::TuneForDataset(opts, /*weibo=*/true);
  TablePrinter msle_table({"size cap", "kept", "test MSLE"});
  std::vector<double> msles;
  for (int cap : {10, 20, 30, 40, 50}) {
    auto dataset = bench::MakeDataset(data.weibo, true, 60.0,
                                      static_cast<int>(120 * scale));
    CASCN_CHECK(dataset.ok()) << dataset.status();
    auto filter = [cap](std::vector<CascadeSample>& split) {
      std::vector<CascadeSample> kept;
      for (auto& s : split)
        if (s.observed.size() < cap) kept.push_back(std::move(s));
      split = std::move(kept);
    };
    filter(dataset->train);
    filter(dataset->validation);
    filter(dataset->test);
    if (dataset->train.size() < 8 || dataset->validation.empty() ||
        dataset->test.empty()) {
      msle_table.AddRow({"< " + std::to_string(cap), "too few", "-"});
      msles.push_back(-1);
      continue;
    }
    const auto run = bench::RunCascn(opts.cascn, *dataset, opts.trainer);
    msle_table.AddRow({"< " + std::to_string(cap),
                       std::to_string(dataset->train.size()),
                       TablePrinter::Cell(run.test_msle)});
    msles.push_back(run.test_msle);
    std::fprintf(stderr, "[fig8] cap=%d msle=%.3f\n", cap, run.test_msle);
  }
  msle_table.Print(std::cout);

  // Shape check: the largest cap achieves a lower MSLE than the smallest
  // usable cap.
  double first = -1, last = -1;
  for (double v : msles)
    if (v >= 0) {
      if (first < 0) first = v;
      last = v;
    }
  if (first >= 0)
    std::printf(
        "\nshape check: MSLE with smallest usable cap %.3f vs largest cap "
        "%.3f (paper: larger observed cascades -> lower MSLE)\n",
        first, last);
  return 0;
}
