// Table IV: CasCN against its ablation variants on both datasets.
//
// Paper shape to reproduce: the full CasCN generally leads; CasCN-Path
// (random-walk sampling instead of snapshots) degrades the most; removing
// the time decay (CasCN-Time) and the directed Laplacian
// (CasCN-Undirected) both hurt; CasCN-GRU is close to the full model.

// Observability: --trace_out=trace.json records spans for the whole run;
// --metrics_out=metrics.json dumps the global registry on exit.

#include <cstdio>
#include <iostream>
#include <map>

#include "benchutil/experiment_runner.h"
#include "benchutil/table_printer.h"
#include "common/cli_flags.h"
#include "common/logging.h"
#include "obs/shutdown.h"
#include "obs/trace.h"
#include "parallel/parallel_for.h"

int main(int argc, char** argv) {
  using namespace cascn;
  CliFlags flags;
  CASCN_CHECK(flags.Parse(argc, argv).ok());
  const std::string trace_out = flags.GetString("trace_out", "");
  const std::string metrics_out = flags.GetString("metrics_out", "");
  if (!trace_out.empty()) obs::Tracer::Get().Enable();
  // --threads overrides the CASCN_THREADS environment default; 1 = serial.
  const int64_t threads_flag = flags.GetInt("threads", 0);
  if (threads_flag > 0)
    parallel::SetThreads(static_cast<size_t>(threads_flag));
  const double scale = bench::BenchScale();
  std::printf(
      "Table IV: CasCN vs. its variants (MSLE, scale %.1f, %zu threads)\n\n",
      scale, parallel::ConfiguredThreads());
  const bench::SyntheticData data = bench::MakeSyntheticData(scale);
  const int max_train = static_cast<int>(200 * scale);

  struct Column {
    bool weibo;
    double window;
  };
  std::vector<Column> columns;
  for (double w : bench::WeiboWindows()) columns.push_back({true, w});
  for (double w : bench::CitationWindows()) columns.push_back({false, w});

  std::vector<std::string> header = {"Model"};
  for (const Column& c : columns)
    header.push_back((c.weibo ? "Weibo " : "HEP ") +
                     bench::WindowLabel(c.weibo, c.window));
  TablePrinter table(header);

  std::map<bench::ModelKind, std::vector<double>> cells;
  for (const Column& column : columns) {
    const auto& cascades = column.weibo ? data.weibo : data.citation;
    auto dataset =
        bench::MakeDataset(cascades, column.weibo, column.window, max_train);
    CASCN_CHECK(dataset.ok()) << dataset.status();
    bench::RunOptions opts = bench::DefaultRunOptions(
        scale, column.weibo ? data.weibo_config.user_universe
                            : data.citation_config.user_universe);
    bench::TuneForDataset(opts, column.weibo);
    for (bench::ModelKind kind : bench::Table4Models()) {
      const auto outcome = bench::RunModel(kind, *dataset, opts);
      cells[kind].push_back(outcome.test_msle);
      std::fprintf(stderr, "[table4] %-18s %-14s msle=%.3f\n",
                   outcome.model.c_str(),
                   bench::WindowLabel(column.weibo, column.window).c_str(),
                   outcome.test_msle);
    }
  }

  for (bench::ModelKind kind : bench::Table4Models()) {
    std::vector<std::string> row = {bench::ModelKindName(kind)};
    for (double msle : cells[kind]) row.push_back(TablePrinter::Cell(msle));
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);

  // Shape checks: average MSLE per variant across columns.
  std::printf("\naverage MSLE across all six columns:\n");
  double cascn_avg = 0;
  std::map<bench::ModelKind, double> averages;
  for (const auto& [kind, msles] : cells) {
    double avg = 0;
    for (double v : msles) avg += v;
    avg /= msles.size();
    averages[kind] = avg;
    if (kind == bench::ModelKind::kCascn) cascn_avg = avg;
    std::printf("  %-18s %.3f\n", bench::ModelKindName(kind).c_str(), avg);
  }
  int variants_behind = 0;
  for (const auto& [kind, avg] : averages)
    if (kind != bench::ModelKind::kCascn && avg >= cascn_avg - 0.05)
      ++variants_behind;
  std::printf(
      "shape check: %d/5 variants trail the full CasCN on average "
      "(paper: 5/5)\n",
      variants_behind);

  obs::ShutdownDumpOptions dump;
  dump.trace_path = trace_out;
  dump.metrics_path = metrics_out;
  CASCN_CHECK(obs::ShutdownDump(dump).ok());
  return 0;
}
