// Table V: parameter impact on CasCN — Chebyshev order K in {1, 2, 3} and
// lambda_max approximation (exact per cascade vs. lambda ~= 2) on the Weibo
// dataset across the three observation windows.
//
// Paper shape to reproduce: K = 2 edges out K = 1 and K = 3; the exact
// lambda_max beats the approximation.

// Observability: --trace_out=trace.json records spans for the whole run;
// --metrics_out=metrics.json dumps the global registry on exit.

#include <cstdio>
#include <iostream>

#include "benchutil/experiment_runner.h"
#include "benchutil/table_printer.h"
#include "common/cli_flags.h"
#include "common/logging.h"
#include "obs/shutdown.h"
#include "obs/trace.h"
#include "parallel/parallel_for.h"

int main(int argc, char** argv) {
  using namespace cascn;
  CliFlags flags;
  CASCN_CHECK(flags.Parse(argc, argv).ok());
  const std::string trace_out = flags.GetString("trace_out", "");
  const std::string metrics_out = flags.GetString("metrics_out", "");
  if (!trace_out.empty()) obs::Tracer::Get().Enable();
  // --threads overrides the CASCN_THREADS environment default; 1 = serial.
  const int64_t threads_flag = flags.GetInt("threads", 0);
  if (threads_flag > 0)
    parallel::SetThreads(static_cast<size_t>(threads_flag));
  const double scale = bench::BenchScale();
  std::printf(
      "Table V: parameter impact on CasCN (MSLE, scale %.1f, %zu threads)\n\n",
      scale, parallel::ConfiguredThreads());
  const bench::SyntheticData data = bench::MakeSyntheticData(scale);
  const int max_train = static_cast<int>(120 * scale);

  struct Setting {
    std::string label;
    int cheb_order;
    LambdaMaxMode lambda_mode;
  };
  const std::vector<Setting> settings = {
      {"K=1", 1, LambdaMaxMode::kExact},
      {"K=2", 2, LambdaMaxMode::kExact},
      {"K=3", 3, LambdaMaxMode::kExact},
      {"lambda~=2 (K=2)", 2, LambdaMaxMode::kApproximateTwo},
      {"lambda=exact (K=2)", 2, LambdaMaxMode::kExact},
  };

  std::vector<std::string> header = {"Parameter"};
  for (double w : bench::WeiboWindows())
    header.push_back(bench::WindowLabel(true, w));
  TablePrinter table(header);

  std::vector<std::vector<double>> results(settings.size());
  for (double window : bench::WeiboWindows()) {
    auto dataset = bench::MakeDataset(data.weibo, true, window, max_train);
    CASCN_CHECK(dataset.ok()) << dataset.status();
    bench::RunOptions opts =
        bench::DefaultRunOptions(scale, data.weibo_config.user_universe);
  bench::TuneForDataset(opts, /*weibo=*/true);
    for (size_t s = 0; s < settings.size(); ++s) {
      CascnConfig config = opts.cascn;
      config.cheb_order = settings[s].cheb_order;
      config.lambda_mode = settings[s].lambda_mode;
      config.seed = opts.seed;
      const double msle =
          bench::AveragedCascnMsle(config, *dataset, opts.trainer, 2);
      results[s].push_back(msle);
      std::fprintf(stderr, "[table5] %-20s %-8s msle=%.3f\n",
                   settings[s].label.c_str(),
                   bench::WindowLabel(true, window).c_str(), msle);
    }
  }

  for (size_t s = 0; s < settings.size(); ++s) {
    std::vector<std::string> row = {settings[s].label};
    for (double msle : results[s]) row.push_back(TablePrinter::Cell(msle));
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);

  auto avg = [&](size_t s) {
    double total = 0;
    for (double v : results[s]) total += v;
    return total / results[s].size();
  };
  std::printf("\nshape check: avg MSLE K=1 %.3f | K=2 %.3f | K=3 %.3f "
              "(paper: K=2 best)\n",
              avg(0), avg(1), avg(2));
  std::printf("shape check: lambda~=2 %.3f vs exact %.3f "
              "(paper: exact better)\n",
              avg(3), avg(4));

  obs::ShutdownDumpOptions dump;
  dump.trace_path = trace_out;
  dump.metrics_path = metrics_out;
  CASCN_CHECK(obs::ShutdownDump(dump).ok());
  return 0;
}
