// Fig. 9: feature visualisation of the learned cascade representations.
//   (a/b) heatmap matrices of h(C_i(t)) with cascades sorted by size;
//   (c-h) t-SNE layouts of the representations colored by hand-crafted
//         properties (leaf count, mean adoption time) and by the true
//         increment size.
// Paper shape: representations separate outbreak (large) from non-outbreak
// cascades, and leaf count / mean time correlate with the true size in the
// layout. Artefacts are written as CSV files for plotting; the binary also
// prints quantitative correlation summaries.

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "benchutil/experiment_runner.h"
#include "common/logging.h"
#include "common/math_util.h"
#include "graph/metrics.h"
#include "viz/export.h"
#include "viz/tsne.h"

namespace {

/// Spearman-style correlation via ranks (robust to heavy tails).
double RankCorrelation(std::vector<double> a, std::vector<double> b) {
  auto to_ranks = [](std::vector<double>& v) {
    std::vector<size_t> idx(v.size());
    std::iota(idx.begin(), idx.end(), 0);
    std::sort(idx.begin(), idx.end(),
              [&](size_t x, size_t y) { return v[x] < v[y]; });
    std::vector<double> ranks(v.size());
    for (size_t r = 0; r < idx.size(); ++r) ranks[idx[r]] = r;
    v = std::move(ranks);
  };
  to_ranks(a);
  to_ranks(b);
  const double ma = cascn::Mean(a), mb = cascn::Mean(b);
  double cov = 0, va = 0, vb = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    cov += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  return va > 0 && vb > 0 ? cov / std::sqrt(va * vb) : 0.0;
}

}  // namespace

int main() {
  using namespace cascn;
  const double scale = bench::BenchScale();
  std::printf("Fig. 9: feature visualisation (scale %.1f)\n\n", scale);
  const bench::SyntheticData data = bench::MakeSyntheticData(scale);

  auto run_dataset = [&](const char* tag, const std::vector<Cascade>& corpus,
                         bool weibo, double window, int universe) {
    auto dataset = bench::MakeDataset(corpus, weibo, window,
                                      static_cast<int>(120 * scale));
    CASCN_CHECK(dataset.ok()) << dataset.status();
    bench::RunOptions opts = bench::DefaultRunOptions(scale, universe);
    bench::TuneForDataset(opts, weibo);
    auto run = bench::RunCascn(opts.cascn, *dataset, opts.trainer);
    std::fprintf(stderr, "[fig9] %s trained, msle=%.3f\n", tag,
                 run.test_msle);

    // Representations of the test set, sorted by true increment size for
    // the heatmap.
    std::vector<size_t> order(dataset->test.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return dataset->test[a].future_increment <
             dataset->test[b].future_increment;
    });
    const int hidden = opts.cascn.hidden_dim;
    Tensor reps(static_cast<int>(order.size()), hidden);
    std::vector<double> leaves, mean_times, sizes;
    for (size_t row = 0; row < order.size(); ++row) {
      const CascadeSample& s = dataset->test[order[row]];
      const Tensor rep = run.model->Representation(s);
      for (int j = 0; j < hidden; ++j)
        reps.At(static_cast<int>(row), j) = rep.At(0, j);
      leaves.push_back(ComputeStructure(s.observed).num_leaves);
      double mt = 0;
      for (int i = 1; i < s.observed.size(); ++i)
        mt += s.observed.event(i).time;
      mean_times.push_back(
          s.observed.size() > 1 ? mt / (s.observed.size() - 1) : 0);
      sizes.push_back(s.log_label);
    }

    // (a/b) heatmap CSV.
    const std::string prefix = std::string("/tmp/cascn_fig9_") + tag;
    CASCN_CHECK(WriteMatrixCsv(prefix + "_heatmap.csv", reps).ok());

    // (c-h) t-SNE layout CSVs colored three ways.
    TsneOptions tsne_opts;
    tsne_opts.iterations = static_cast<int>(200 * scale);
    const Tensor layout = TsneEmbed(reps, tsne_opts);
    CASCN_CHECK(
        WriteScatterCsv(prefix + "_leaves.csv", layout, leaves).ok());
    CASCN_CHECK(
        WriteScatterCsv(prefix + "_meantime.csv", layout, mean_times).ok());
    CASCN_CHECK(
        WriteScatterCsv(prefix + "_increment.csv", layout, sizes).ok());
    std::printf("%s: wrote %s_{heatmap,leaves,meantime,increment}.csv\n",
                tag, prefix.c_str());

    // Quantitative stand-ins for the visual claims.
    // 1. Outbreak separation: representation norm correlates with size.
    std::vector<double> norms;
    for (int i = 0; i < reps.rows(); ++i) {
      double n = 0;
      for (int j = 0; j < hidden; ++j) n += reps.At(i, j) * reps.At(i, j);
      norms.push_back(std::sqrt(n));
    }
    std::printf(
        "  rank-corr(representation, increment size): %.2f  "
        "(pattern separation, Fig. 9a/b)\n",
        std::fabs(RankCorrelation(norms, sizes)));
    // 2. Leaves and mean time correlate with the true size in the layout.
    std::printf(
        "  rank-corr(leaf count, increment size):     %.2f  (Fig. 9c/d vs g/h)\n",
        RankCorrelation(leaves, sizes));
    std::printf(
        "  rank-corr(mean time, increment size):      %.2f  (Fig. 9e/f vs g/h)\n",
        RankCorrelation(mean_times, sizes));
  };

  run_dataset("weibo", data.weibo, true, 60.0,
              data.weibo_config.user_universe);
  run_dataset("hepph", data.citation, false, 60.0,
              data.citation_config.user_universe);
  return 0;
}
